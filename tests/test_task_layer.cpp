// Unit tests for the fork-join task layer (engine/task.hpp) and its
// integration with Pool: nested parallel_for routing (the former
// "must not be nested" deadlock), empty ranges, single-thread inline
// ordering (the sequential reference execution), exception contracts,
// and the TaskStats counters.
#include <gtest/gtest.h>

#include <atomic>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/expect.hpp"

#include "engine/pool.hpp"
#include "engine/task.hpp"

using namespace bsmp;

// ---------------------------------------------------------------------
// parallel_for edge cases.
// ---------------------------------------------------------------------

TEST(PoolEdgeCases, EmptyRangeRunsNothingAndReturns) {
  for (int threads : {1, 4}) {
    engine::Pool pool(threads);
    std::atomic<int> calls{0};
    pool.parallel_for(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0) << "threads=" << threads;
    // The pool must stay usable afterwards.
    pool.parallel_for(3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 3) << "threads=" << threads;
  }
}

TEST(PoolEdgeCases, NestedParallelForNoDeadlock) {
  engine::Pool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { ++calls; });
  });
  EXPECT_EQ(calls.load(), 64);
}

TEST(PoolEdgeCases, TriplyNestedParallelForNoDeadlock) {
  engine::Pool pool(3);
  std::atomic<int> calls{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(4, [&](std::size_t) { ++calls; });
    });
  });
  EXPECT_EQ(calls.load(), 64);
}

TEST(PoolEdgeCases, NestedParallelForOnSingleThreadPool) {
  engine::Pool pool(1);
  std::atomic<int> calls{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { ++calls; });
  });
  EXPECT_EQ(calls.load(), 16);
}

TEST(PoolEdgeCases, NestedParallelForRethrowsLowestIndex) {
  engine::Pool pool(4);
  std::atomic<int> calls{0};
  auto inner = [&](std::size_t i) {
    ++calls;
    if (i == 2 || i == 5)
      throw std::runtime_error("inner " + std::to_string(i));
  };
  pool.parallel_for(2, [&](std::size_t outer) {
    if (outer == 0) {
      EXPECT_THROW(
          {
            try {
              pool.parallel_for(8, inner);
            } catch (const std::runtime_error& e) {
              EXPECT_STREQ(e.what(), "inner 2");
              throw;
            }
          },
          std::runtime_error);
    } else {
      pool.parallel_for(8, [&](std::size_t) { ++calls; });
    }
  });
  // Every inner index ran despite the failures (same contract as the
  // top-level parallel_for).
  EXPECT_EQ(calls.load(), 16);
}

// ---------------------------------------------------------------------
// TaskScope: the sequential reference path.
// ---------------------------------------------------------------------

TEST(TaskScope, UnboundForksRunInlineInForkOrder) {
  ASSERT_EQ(engine::TaskScheduler::current(), nullptr);
  std::vector<int> order;
  engine::TaskScope scope;
  EXPECT_FALSE(scope.parallel());
  for (int i = 0; i < 10; ++i) {
    scope.fork([&order, i] { order.push_back(i); });
    // Inline means *immediately*: the task has already run.
    ASSERT_EQ(static_cast<int>(order.size()), i + 1);
  }
  scope.join();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(TaskScope, SingleThreadPoolForksRunInlineInForkOrder) {
  // Pool(1) with fork-join active: the scheduler exists but has one
  // slot, so forks still run inline in exact fork order — the
  // subtree-order guarantee the conformance contract leans on.
  engine::Pool pool(1);
  auto bind = pool.bind_caller();
  ASSERT_NE(engine::TaskScheduler::current(), nullptr);
  std::vector<int> order;
  engine::TaskScope scope;
  EXPECT_FALSE(scope.parallel());
  for (int i = 0; i < 10; ++i) scope.fork([&order, i] { order.push_back(i); });
  scope.join();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(pool.task_stats().spawned, 0u);
  EXPECT_EQ(pool.task_stats().inlined, 10u);
}

// ---------------------------------------------------------------------
// TaskScope: the parallel path.
// ---------------------------------------------------------------------

TEST(TaskScope, ParallelForksAllExecute) {
  engine::Pool pool(4);
  auto bind = pool.bind_caller();
  std::atomic<int> calls{0};
  engine::TaskScope scope;
  EXPECT_TRUE(scope.parallel());
  for (int i = 0; i < 100; ++i) scope.fork([&calls] { ++calls; });
  scope.join();
  EXPECT_EQ(calls.load(), 100);
  EXPECT_EQ(pool.task_stats().spawned, 100u);
}

TEST(TaskScope, NestedScopesOnSameScheduler) {
  engine::Pool pool(4);
  auto bind = pool.bind_caller();
  std::atomic<int> calls{0};
  engine::TaskScope outer;
  for (int i = 0; i < 4; ++i) {
    outer.fork([&calls] {
      engine::TaskScope inner;
      for (int j = 0; j < 4; ++j) inner.fork([&calls] { ++calls; });
      inner.join();
    });
  }
  outer.join();
  EXPECT_EQ(calls.load(), 16);
}

TEST(TaskScope, JoinRethrowsLowestForkIndex) {
  engine::Pool pool(4);
  auto bind = pool.bind_caller();
  std::atomic<int> calls{0};
  engine::TaskScope scope;
  for (int i = 0; i < 8; ++i) {
    scope.fork([&calls, i] {
      ++calls;
      if (i == 1 || i == 3 || i == 5)
        throw std::runtime_error("fork " + std::to_string(i));
    });
  }
  EXPECT_THROW(
      {
        try {
          scope.join();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "fork 1");
          throw;
        }
      },
      std::runtime_error);
  EXPECT_EQ(calls.load(), 8);
}

TEST(TaskScope, DestructorJoinsWithoutRethrow) {
  engine::Pool pool(4);
  auto bind = pool.bind_caller();
  std::atomic<int> calls{0};
  {
    engine::TaskScope scope;
    for (int i = 0; i < 16; ++i) {
      scope.fork([&calls] {
        ++calls;
        throw std::runtime_error("swallowed");
      });
    }
    // No explicit join: the destructor must wait for all forks and
    // swallow the captured exception.
  }
  EXPECT_EQ(calls.load(), 16);
}

TEST(TaskStatsCounters, ResetAndAccumulate) {
  engine::Pool pool(2);
  {
    auto bind = pool.bind_caller();
    engine::TaskScope scope;
    for (int i = 0; i < 32; ++i) scope.fork([] {});
    scope.join();
  }
  engine::TaskStats s = pool.task_stats();
  EXPECT_EQ(s.spawned, 32u);
  pool.reset_task_stats();
  s = pool.task_stats();
  EXPECT_EQ(s.spawned, 0u);
  EXPECT_EQ(s.inlined, 0u);
  EXPECT_EQ(s.stolen, 0u);
  EXPECT_EQ(s.steal_ops, 0u);
  EXPECT_EQ(s.join_waits, 0u);
  for (const auto& p : s.phase) {
    EXPECT_EQ(p.spawned, 0u);
    EXPECT_EQ(p.inlined, 0u);
    EXPECT_EQ(p.join_waits, 0u);
    EXPECT_EQ(p.park_ns, 0u);
  }
}

TEST(TaskStatsCounters, PhaseAttributionSplitsForks) {
  // Scopes tagged with a ForkPhase attribute their spawned/inlined
  // counts to that phase; untagged scopes land under kNone. The phase
  // slices sum to the aggregate counters.
  engine::Pool pool(2);
  {
    auto bind = pool.bind_caller();
    engine::TaskScope waves(engine::ForkPhase::kRegime2Wave);
    for (int i = 0; i < 5; ++i) waves.fork([] {});
    waves.join();
    engine::TaskScope reloc(engine::ForkPhase::kRegime1Relocate);
    for (int i = 0; i < 3; ++i) reloc.fork([] {});
    reloc.join();
    engine::TaskScope untagged;
    untagged.fork([] {});
    untagged.join();
  }
  engine::TaskStats s = pool.task_stats();
  auto at = [&](engine::ForkPhase p) -> const engine::PhaseTaskStats& {
    return s.phase[static_cast<std::size_t>(p)];
  };
  EXPECT_EQ(at(engine::ForkPhase::kRegime2Wave).spawned +
                at(engine::ForkPhase::kRegime2Wave).inlined,
            5u);
  EXPECT_EQ(at(engine::ForkPhase::kRegime1Relocate).spawned +
                at(engine::ForkPhase::kRegime1Relocate).inlined,
            3u);
  EXPECT_EQ(at(engine::ForkPhase::kNone).spawned +
                at(engine::ForkPhase::kNone).inlined,
            1u);
  std::uint64_t phase_total = 0, phase_waits = 0;
  for (const auto& p : s.phase) {
    phase_total += p.spawned + p.inlined;
    phase_waits += p.join_waits;
  }
  EXPECT_EQ(phase_total, s.spawned + s.inlined);
  EXPECT_EQ(phase_waits, s.join_waits);
  pool.reset_task_stats();
}

TEST(TaskStatsCounters, PhaseNamesAreStable) {
  EXPECT_STREQ(engine::fork_phase_name(engine::ForkPhase::kNone), "none");
  EXPECT_STREQ(engine::fork_phase_name(engine::ForkPhase::kMachineTile),
               "machine-tile");
  EXPECT_STREQ(engine::fork_phase_name(engine::ForkPhase::kRegime1Relocate),
               "regime1-relocate");
  EXPECT_STREQ(engine::fork_phase_name(engine::ForkPhase::kRegime2Wave),
               "regime2-wave");
  EXPECT_STREQ(engine::fork_phase_name(engine::ForkPhase::kRegime2Subtile),
               "regime2-subtile");
  EXPECT_STREQ(engine::fork_phase_name(engine::ForkPhase::kExecutorLeaf),
               "executor-leaf");
}

// ---------------------------------------------------------------------
// Slot binding exclusivity: a deque slot has one owner at a time.
// ---------------------------------------------------------------------

TEST(TaskSchedulerBind, SecondThreadBindingHeldSlotThrows) {
  engine::Pool pool(2);
  auto bind = pool.bind_caller();
  std::exception_ptr err;
  std::thread t([&] {
    try {
      auto second = pool.bind_caller();  // slot 0 is held by the main thread
    } catch (...) {
      err = std::current_exception();
    }
  });
  t.join();
  ASSERT_TRUE(err) << "concurrent bind of a held slot must fail fast";
  EXPECT_THROW(std::rethrow_exception(err), precondition_error);
}

TEST(TaskSchedulerBind, SameThreadRebindAllowedAndReleaseFreesSlot) {
  engine::Pool pool(2);
  {
    auto outer = pool.bind_caller();
    auto inner = pool.bind_caller();  // nested rebinding on one thread is fine
    engine::TaskScope scope;
    std::atomic<int> calls{0};
    for (int i = 0; i < 8; ++i) scope.fork([&calls] { ++calls; });
    scope.join();
    EXPECT_EQ(calls.load(), 8);
  }
  // Both bindings released: another thread may now take the slot.
  std::exception_ptr err;
  std::thread t([&] {
    try {
      auto bind = pool.bind_caller();
    } catch (...) {
      err = std::current_exception();
    }
  });
  t.join();
  EXPECT_FALSE(err);
}
