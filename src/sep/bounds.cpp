#include "sep/bounds.hpp"

#include <cmath>

#include "core/expect.hpp"
#include "core/logmath.hpp"

namespace bsmp::sep {

double SeparatorSpec::g(double x) const {
  BSMP_REQUIRE(x >= 0);
  return c * std::pow(x, gamma);
}

double SeparatorSpec::sigma0() const {
  double dg = std::pow(delta, gamma);
  return static_cast<double>(q) * c * dg / (1.0 - dg);
}

bool SeparatorSpec::admits(double alpha) const {
  return alpha <= (1.0 - gamma) / gamma + 1e-12;
}

double SeparatorSpec::tau0(double a, double alpha) const {
  BSMP_REQUIRE(a > 0);
  BSMP_REQUIRE_MSG(admits(alpha),
                   "Proposition 3 requires alpha <= (1-gamma)/gamma");
  // Per recursion level, copying costs 4 q a σ(δ^j k)^α g(δ^j k); the
  // geometric factor per level is δ^(γ(1+α) j) against a level count of
  // loḡ(k)/log(1/δ). When γ(1+α) < 1 the per-level cost shrinks and the
  // sum telescopes; at equality (the regime the paper uses: α =
  // (1-γ)/γ) every level costs the same and the loḡ factor is tight.
  double exponent = 1.0 - gamma * (1.0 + alpha);
  double dprime;
  if (exponent > 1e-9) {
    dprime = 1.0 / (1.0 - std::pow(delta, exponent));
  } else {
    dprime = 1.0;  // equal-cost levels: the loḡ k factor counts them
  }
  return 4.0 * static_cast<double>(q) * a * std::pow(sigma0(), alpha) *
         dprime / std::log2(1.0 / delta);
}

double SeparatorSpec::space_bound(double k) const {
  return sigma0() * std::pow(k, gamma);
}

double SeparatorSpec::time_bound(double k, double a, double alpha) const {
  return tau0(a, alpha) * k * core::logbar(k);
}

SeparatorSpec diamond_separator() {
  return {"diamond D(r), d=1", 4, 2.0 * std::sqrt(2.0), 0.5, 0.25};
}

SeparatorSpec octahedron_separator() {
  return {"octahedron P, d=2", 14, 2.0 * std::cbrt(3.0), 2.0 / 3.0, 0.5};
}

SeparatorSpec tetrahedron_separator() {
  return {"tetrahedron W, d=2", 5, std::cbrt(12.0), 2.0 / 3.0, 0.5};
}

SeparatorSpec d3_separator_conjecture() {
  // The six-coordinate box split has at most 2^6 children before
  // sum-overlap pruning; Γin scales as the 3-face area |U|^(3/4);
  // each child has at most half the volume... the largest child of the
  // 4-dimensional domain split carries δ = 1/2 by symmetry with d=2.
  return {"d=3 box (Section-6 conjecture)", 64, 4.0, 0.75, 0.5};
}

}  // namespace bsmp::sep
