#include <gtest/gtest.h>

#include "sim/observe.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;
using geom::Point;
using geom::Stencil;

TEST(FinalPoints, M1IsTheLastRow) {
  Stencil<1> st{{4}, 6, 1};
  auto pts = sim::final_points<1>(st);
  ASSERT_EQ(pts.size(), 4u);
  for (const auto& p : pts) EXPECT_EQ(p.t, 5);
}

TEST(FinalPoints, OnePerNodePerCell) {
  Stencil<1> st{{5}, 12, 3};
  auto pts = sim::final_points<1>(st);
  EXPECT_EQ(pts.size(), 15u);
  // Cell j was last written at the largest t < 12 with t ≡ j (mod 3):
  // j=0 -> 9, j=1 -> 10, j=2 -> 11.
  int count9 = 0, count10 = 0, count11 = 0;
  for (const auto& p : pts) {
    if (p.t == 9) ++count9;
    if (p.t == 10) ++count10;
    if (p.t == 11) ++count11;
  }
  EXPECT_EQ(count9, 5);
  EXPECT_EQ(count10, 5);
  EXPECT_EQ(count11, 5);
}

TEST(FinalPoints, MemoryDeeperThanHorizon) {
  // m > T: cells j >= T were never written and are skipped.
  Stencil<1> st{{3}, 4, 10};
  auto pts = sim::final_points<1>(st);
  EXPECT_EQ(pts.size(), 3u * 4u);
  for (const auto& p : pts) {
    EXPECT_GE(p.t, 0);
    EXPECT_LT(p.t, 4);
  }
}

TEST(FinalPoints, D2AndD3Counts) {
  Stencil<2> st2{{3, 4}, 5, 2};
  EXPECT_EQ(sim::final_points<2>(st2).size(), 3u * 4u * 2u);
  Stencil<3> st3{{2, 2, 2}, 3, 1};
  EXPECT_EQ(sim::final_points<3>(st3).size(), 8u);
}

TEST(ExtractFinal, PullsExactlyTheFinalPoints) {
  auto g = workload::make_mix_guest<1>({4}, 8, 2, 3);
  auto ref = sim::reference_run<1>(g);
  // extract_final over a superset staging map returns only the finals.
  sep::ValueMap<1> staging = ref.final_values;
  staging.emplace(Point<1>{{0}, 0}, 999);
  auto fin = sim::extract_final<1>(g.stencil, staging);
  EXPECT_EQ(fin.size(), 8u);
  EXPECT_FALSE(fin.contains(Point<1>{{0}, 0}));
}

TEST(ExtractFinal, MissingValueIsAnInvariantError) {
  Stencil<1> st{{4}, 4, 1};
  sep::ValueMap<1> empty;
  EXPECT_THROW(sim::extract_final<1>(st, empty), bsmp::invariant_error);
}

TEST(SameValues, DetectsEveryKindOfMismatch) {
  sep::ValueMap<1> a, b;
  a.emplace(Point<1>{{0}, 1}, 5);
  b.emplace(Point<1>{{0}, 1}, 5);
  EXPECT_TRUE(sim::same_values<1>(a, b));
  b[Point<1>{{0}, 1}] = 6;
  EXPECT_FALSE(sim::same_values<1>(a, b));  // different value
  b[Point<1>{{0}, 1}] = 5;
  b.emplace(Point<1>{{1}, 1}, 5);
  EXPECT_FALSE(sim::same_values<1>(a, b));  // different size
  a.emplace(Point<1>{{2}, 1}, 5);
  EXPECT_FALSE(sim::same_values<1>(a, b));  // same size, different keys
}

TEST(Reference, FinalValuesCoverEveryCell) {
  auto g = workload::make_mix_guest<2>({3, 3}, 7, 4, 9);
  auto ref = sim::reference_run<2>(g);
  EXPECT_EQ(ref.final_values.size(), 9u * 4u);
}

TEST(Reference, HorizonShorterThanMemory) {
  // T < m: only T cells were ever written per node.
  auto g = workload::make_mix_guest<1>({5}, 3, 8, 4);
  auto ref = sim::reference_run<1>(g);
  EXPECT_EQ(ref.final_values.size(), 5u * 3u);
}
