# Empty compiler generated dependencies file for bench_e2_naive.
# This may be replaced when dependencies are built.
