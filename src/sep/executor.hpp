// The topological-separator executor: the concrete realization of
// Proposition 2 and Proposition 3.
//
// execute(U, staging) runs every vertex of the convex domain U under
// the contract:
//   * on entry, `staging` holds the values of Γin(U) (asserted — this
//     assertion *is* the topological-partition property of Definition 4
//     checked at run time on every recursion level);
//   * on return, `staging` additionally holds the values of the
//     out-set of U, and U's interior values have been removed.
//
// Cost model (charged into a CostLedger):
//   * recursion level on domain U: copying the preboundary of each
//     child in and its out-set back out costs 2 f(S(U)) per word
//     (Prop. 2 steps 1 and 3), where S(U) is the space bound of the
//     recurrence S(U) <= max_i S(Ui) + P(U);
//   * leaf (width <= leaf_width): each vertex is executed naively —
//     one unit of compute plus one access per operand and one for the
//     result, each charged f(S(leaf)).
// Setting leaf_width = m realizes Theorem 3's "executable diamonds"
// D(m) executed by naive simulation at cost Θ(m^3); leaf_width = 1 is
// the pure divide-and-conquer of Theorems 2 and 5.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/cost.hpp"
#include "core/expect.hpp"
#include "geom/region.hpp"
#include "hram/access_fn.hpp"
#include "sep/guest.hpp"

namespace bsmp::sep {

struct ExecutorConfig {
  /// Domains of monotone width <= leaf_width are executed naively.
  int64_t leaf_width = 1;
  /// Access function of the executing node's H-RAM.
  hram::AccessFn f = hram::AccessFn::unit();
  /// Constant of the space bound S(width) = space_const * min(reach,
  /// width) * width^D + 8; tests verify the executor's live footprint
  /// stays within it. Measured peak footprints converge to ~4x
  /// reach*width^D; the paper's own recurrence constant σ0 =
  /// q c δ^γ / (1 - δ^γ) evaluates to ~11 for the d=1 diamond.
  double space_const = 6.0;
  /// Constant of the *leaf* working-set bound. A leaf ("executable
  /// diamond", Theorem 3) holds only its own points and preboundary —
  /// no recursion-path staging — so its accesses are charged at a
  /// tighter address scale than the recursion levels'.
  double leaf_space_const = 2.0;
};

template <int D>
class Executor {
 public:
  Executor(const Guest<D>* guest, ExecutorConfig cfg)
      : guest_(guest), cfg_(cfg) {
    BSMP_REQUIRE(guest != nullptr);
    guest_->validate();
    BSMP_REQUIRE(cfg_.leaf_width >= 1);
  }

  /// Rebind the ledger charges are recorded into (per-processor ledgers
  /// in the multiprocessor simulators).
  void set_ledger(core::CostLedger* ledger) { ledger_ = ledger; }

  /// Space bound S for a domain of the given monotone width, in words:
  /// S(w) = space_const * min(reach, w) * w^D + 64. The min matters when
  /// the domain is shorter than the memory depth m: then every vertex's
  /// self-lane predecessor lies below the domain, the preboundary is
  /// Θ(w^(D+1)) and so is the working set — not Θ(m * w^D).
  double space_bound(int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<int64_t>(guest_->stencil.reach(), width));
    double s = cfg_.space_const * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return s + 8.0;
  }

  /// Working-set bound of a naively-executed leaf of the given width:
  /// its points plus preboundary, with no recursion-path staging.
  double leaf_space_bound(int64_t width) const {
    double w = static_cast<double>(width);
    double depth = static_cast<double>(
        std::min<int64_t>(guest_->stencil.reach(), width));
    double s = cfg_.leaf_space_const * depth;
    for (int i = 0; i < D; ++i) s *= w;
    return s + 8.0;
  }

  /// Execute domain U (see the contract above). Returns the points of
  /// the out-set of U, whose values are now in `staging`.
  std::vector<geom::Point<D>> execute(const geom::Region<D>& U,
                                      ValueMap<D>& staging) {
    BSMP_REQUIRE(ledger_ != nullptr);
    std::vector<geom::Point<D>> out;
    if (U.width() <= cfg_.leaf_width) {
      execute_leaf(U, staging, out);
      note_staging(staging);
      return out;
    }

    const core::Cost fS =
        cfg_.f(static_cast<std::uint64_t>(space_bound(U.width())));
    std::vector<geom::Point<D>> produced;  // out-sets of all children
    for (const geom::Region<D>& child : U.split()) {
      // Proposition 2, step 1: bring the child's preboundary into the
      // child's working space. Presence in staging is exactly the
      // topological-partition property.
      std::vector<geom::Point<D>> gin = child.preboundary();
      for (const auto& q : gin) {
        BSMP_ASSERT_MSG(staging.contains(q),
                        "preboundary value missing: topological partition "
                        "violated at width "
                            << U.width());
      }
      ledger_->charge(core::CostKind::kBlockMove,
                      2.0 * fS * static_cast<core::Cost>(gin.size()),
                      gin.size());

      // Step 2: execute the child.
      std::vector<geom::Point<D>> child_out = execute(child, staging);

      // Step 3: save the child's out-set for later children / parent.
      ledger_->charge(core::CostKind::kBlockMove,
                      2.0 * fS * static_cast<core::Cost>(child_out.size()),
                      child_out.size());
      produced.insert(produced.end(), child_out.begin(), child_out.end());
    }

    // Retain only U's out-set; everything else produced inside U is
    // dead (its successors are all inside U and already executed).
    out = U.outset();
    ValueMap<D> keep;  // membership filter
    keep.reserve(out.size() * 2);
    for (const auto& q : out) keep.emplace(q, 0);
    for (const auto& q : produced) {
      if (!keep.contains(q)) staging.erase(q);
    }
#ifndef NDEBUG
    for (const auto& q : out)
      BSMP_ASSERT_MSG(staging.contains(q), "out-set value missing");
#endif
    note_staging(staging);
    return out;
  }

  /// Total dag vertices executed so far.
  std::int64_t vertices_executed() const { return vertices_; }

  /// High-water mark of the staging map (live values), in words — the
  /// concrete footprint compared against space_bound in tests.
  std::size_t peak_staging() const { return peak_staging_; }

 private:
  void note_staging(const ValueMap<D>& staging) {
    if (staging.size() > peak_staging_) peak_staging_ = staging.size();
  }

  void execute_leaf(const geom::Region<D>& U, ValueMap<D>& staging,
                    std::vector<geom::Point<D>>& out) {
    const geom::Stencil<D>& st = guest_->stencil;
    const core::Cost f_leaf =
        cfg_.f(static_cast<std::uint64_t>(leaf_space_bound(U.width())));
    ValueMap<D> local;

    auto lookup = [&](const geom::Point<D>& q) -> Word {
      auto it = local.find(q);
      if (it != local.end()) return it->second;
      auto is = staging.find(q);
      BSMP_ASSERT_MSG(is != staging.end(),
                      "operand missing at leaf: topological partition or "
                      "out-set computation is wrong");
      return is->second;
    };

    U.for_each([&](const geom::Point<D>& p) {
      Word value;
      int operands = 0;
      if (p.t == 0) {
        value = guest_->input(p.x, 0);  // input vertex (Definition 3)
        operands = 1;
      } else {
        Word self_prev;
        if (p.t >= st.m) {
          geom::Point<D> q = p;
          q.t = p.t - st.m;
          self_prev = lookup(q);
        } else {
          self_prev = guest_->input(p.x, p.t % st.m);
        }
        NeighborWords<D> nbrs{};
        for (int i = 0; i < D; ++i) {
          for (int s = 0; s < 2; ++s) {
            geom::Point<D> q = p;
            q.x[i] += (s == 0 ? -1 : 1);
            q.t = p.t - 1;
            if (st.in_space(q.x)) {
              nbrs[2 * i + s] = lookup(q);
              ++operands;
            }
          }
        }
        ++operands;  // self operand
        value = guest_->rule(p, self_prev, nbrs);
      }
      local.emplace(p, value);
      ++vertices_;
      ledger_->charge(core::CostKind::kCompute, 1.0);
      ledger_->charge(core::CostKind::kLocalAccess,
                      static_cast<core::Cost>(operands + 1) * f_leaf,
                      static_cast<std::uint64_t>(operands + 1));
    });

    out = U.outset();
    for (const auto& q : out) {
      auto it = local.find(q);
      BSMP_ASSERT_MSG(it != local.end(), "out-set point not executed");
      staging.emplace(q, it->second);
    }
  }

  const Guest<D>* guest_;
  ExecutorConfig cfg_;
  core::CostLedger* ledger_ = nullptr;
  std::int64_t vertices_ = 0;
  std::size_t peak_staging_ = 0;
};

}  // namespace bsmp::sep
