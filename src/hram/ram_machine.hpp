// The H-RAM as a machine, not just a memory.
//
// Definition 1 builds on the RAM of Cook & Reckhow [CR73]: a program
// of arithmetic/branch instructions over an addressable memory. This
// module provides that machine with the hierarchical cost model: each
// executed instruction costs one unit (the Section-2 time unit) plus
// f(a) for every memory operand at address a — so a program's virtual
// running time depends on *where* its data lives, which is exactly the
// paper's notion of data locality ("an algorithm possesses data
// locality if its running time depends upon the addresses at which
// both input and intermediate values are stored").
//
// The ISA is accumulator-based with direct and indirect addressing:
//
//   LOADI k      acc <- k
//   LOAD a       acc <- M[a]
//   LOADN a      acc <- M[M[a]]          (indirect)
//   STORE a      M[a] <- acc
//   STOREN a     M[M[a]] <- acc          (indirect)
//   ADD/SUB/MUL a        acc <- acc op M[a]
//   ADDI/SUBI/MULI k     acc <- acc op k
//   JMP l        pc <- l
//   JZ/JNZ/JLZ l conditional jump on acc (== 0, != 0, sign bit)
//   HALT
//
// Programs are built with the small Assembler (named labels, forward
// references). workload/ram_programs.hpp provides ready-made programs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/cost.hpp"
#include "hram/hram.hpp"

namespace bsmp::hram {

enum class RamOp : unsigned {
  kLoadImm,
  kLoad,
  kLoadInd,
  kStore,
  kStoreInd,
  kAdd,
  kSub,
  kMul,
  kAddImm,
  kSubImm,
  kMulImm,
  kJmp,
  kJz,
  kJnz,
  kJlz,
  kHalt
};

const char* to_string(RamOp op);

struct RamInstr {
  RamOp op = RamOp::kHalt;
  std::int64_t arg = 0;  ///< immediate, address, or jump target
};

using RamProgram = std::vector<RamInstr>;

/// Tiny two-pass assembler: emit instructions and labels; jump targets
/// may reference labels not yet defined.
class Assembler {
 public:
  Assembler& label(const std::string& name);
  Assembler& emit(RamOp op, std::int64_t arg = 0);
  Assembler& jump(RamOp op, const std::string& target);

  /// Resolve all label references; throws on unknown labels.
  RamProgram assemble() const;

 private:
  struct Pending {
    std::size_t instr;
    std::string target;
  };
  RamProgram prog_;
  std::map<std::string, std::int64_t> labels_;
  std::vector<Pending> pending_;
};

struct RamResult {
  core::Cost time = 0;          ///< charged virtual time
  std::int64_t instructions = 0;
  bool halted = false;          ///< false: hit the step limit
  hram::Word acc = 0;           ///< final accumulator
};

/// Run `prog` on `ram` starting with accumulator 0. The program is
/// stored in the (free) control store, not in the H-RAM — only data
/// accesses are charged, per the paper's model.
RamResult run_ram_program(const RamProgram& prog, HRam& ram,
                          std::int64_t max_instructions = 1 << 26);

}  // namespace bsmp::hram
