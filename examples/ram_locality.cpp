// Data locality on the H-RAM machine (Definition 1 over the
// Cook-Reckhow RAM): the same program, the same data, different
// addresses — different running times. This is the paper's definition
// of data locality made tangible: "an algorithm possesses data
// locality if its running time depends upon the addresses at which
// both input and intermediate values of the computation are stored."
//
//   $ ./ram_locality [count]
#include <cstdlib>
#include <iostream>

#include "core/table.hpp"
#include "hram/ram_machine.hpp"
#include "workload/ram_programs.hpp"

using namespace bsmp;

int main(int argc, char** argv) {
  std::int64_t count = argc > 1 ? std::atoll(argv[1]) : 256;
  if (count < 1) {
    std::cerr << "usage: ram_locality [count >= 1]\n";
    return 2;
  }

  core::Table t("summing " + std::to_string(count) +
                    " words on three memories, data near vs far",
                {"machine", "array base", "virtual time", "vs unit RAM"});
  double unit_time = 0;
  for (int machine = 0; machine < 3; ++machine) {
    hram::AccessFn f = machine == 0 ? hram::AccessFn::unit()
                       : machine == 1
                           ? hram::AccessFn::hierarchical(1, 1.0)
                           : hram::AccessFn::hierarchical(2, 1.0);
    const char* name = machine == 0   ? "unit-cost RAM"
                       : machine == 1 ? "H-RAM d=1 (f=x)"
                                      : "H-RAM d=2 (f=sqrt x)";
    for (std::int64_t base : {std::int64_t{64}, 16 * count}) {
      hram::HRam ram(static_cast<std::size_t>(base + count + 64), f);
      for (std::int64_t i = 0; i < count; ++i)
        ram.write(base + i, static_cast<hram::Word>(i));
      double pre = ram.ledger().total();
      auto res = hram::run_ram_program(workload::ram_sum(base, count), ram);
      if (!res.halted ||
          res.acc != static_cast<hram::Word>(count * (count - 1) / 2)) {
        std::cerr << "BUG: wrong sum\n";
        return 1;
      }
      double time = res.time - pre;
      if (machine == 0 && base == 64) unit_time = time;
      t.add_row({std::string(name), (long long)base, time,
                 time / unit_time});
    }
  }
  t.print(std::cout);
  std::cout
      << "\nThe unit-cost RAM is address-blind; the bounded-speed H-RAMs\n"
         "slow down with distance — steeply for d=1, as sqrt for d=2.\n"
         "Careful address management (keeping hot data low) is exactly\n"
         "the lever the paper's divide-and-conquer simulations pull.\n";
  return 0;
}
