// Guest computation semantics shared by every simulator.
//
// A guest Md(n, n, m) runs a synchronous network computation: at step t
// node x combines one cell of its private memory (last written at step
// t - m under the scanning access pattern) with the words received from
// its neighbors at step t-1, producing the dag value of vertex (x, t).
// For m = 1 this is exactly the execution of GT(H) from Definition 3.
//
// Values are 64-bit words; rules should mix their operands well so that
// any scheduling bug in a simulator corrupts the final rows with
// overwhelming probability (the equivalence tests rely on this).
#pragma once

#include <array>
#include <functional>
#include <unordered_map>

#include "geom/lattice.hpp"
#include "hram/hram.hpp"

namespace bsmp::sep {

using hram::Word;

/// Values of dag vertices, keyed by lattice point — the staging medium
/// every simulator and executor exchanges results through.
template <int D>
using ValueMap =
    std::unordered_map<geom::Point<D>, Word, geom::PointHash<D>>;

/// Neighbor operand order: for each spatial dimension i, first the
/// -e_i neighbor then the +e_i neighbor; slots for neighbors outside
/// the mesh hold 0 (fixed zero boundary).
template <int D>
using NeighborWords = std::array<Word, geom::kMono<D>>;

/// The step rule: value(x, t) for t >= 1. `self_prev` is the node's own
/// cell operand — value(x, t-m) when t >= m, or the initial content of
/// cell (t mod m) when t < m.
template <int D>
using Rule = std::function<Word(const geom::Point<D>& p, Word self_prev,
                                const NeighborWords<D>& nbrs)>;

/// Initial memory contents: cell `cell` (0 <= cell < m) of node x.
/// value(x, 0) is input(x, 0) by Definition 3.
template <int D>
using InputFn =
    std::function<Word(const std::array<int64_t, D>& x, int64_t cell)>;

/// A guest computation: stencil (mesh extents, horizon T, memory m),
/// step rule and inputs.
template <int D>
struct Guest {
  geom::Stencil<D> stencil;
  Rule<D> rule;
  InputFn<D> input;

  void validate() const {
    stencil.validate();
    BSMP_REQUIRE(rule != nullptr);
    BSMP_REQUIRE(input != nullptr);
  }
};

}  // namespace bsmp::sep
