# Empty dependencies file for bsmp_core.
# This may be replaced when dependencies are built.
