#include "engine/plan_cache.hpp"

#include <bit>

#include "engine/arena.hpp"

namespace bsmp::engine {

std::uint64_t key_of_double(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

PlanCache::PlanCache() : max_bytes_(default_plan_cache_bytes()) {}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.builds = builds_.load(std::memory_order_relaxed);
  s.evictions = evictions_;
  s.bytes = bytes_;
  return s;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  builds_.store(0, std::memory_order_relaxed);
}

void PlanCache::set_max_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  max_bytes_ = bytes;
  evict_locked();
}

std::size_t PlanCache::max_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_bytes_;
}

}  // namespace bsmp::engine
