// bsmp-stat: show / diff / fit over the repo's JSON artifacts. All
// logic lives in the bsmp_stat library (src/stat/bsmp_stat.hpp) so the
// tests can drive the exact CLI surface in-process.
#include <iostream>

#include "stat/bsmp_stat.hpp"

int main(int argc, char** argv) {
  return bsmp::stat::run_cli(argc, argv, std::cout, std::cerr);
}
