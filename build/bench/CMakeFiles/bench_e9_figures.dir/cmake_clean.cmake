file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_figures.dir/bench_e9_figures.cpp.o"
  "CMakeFiles/bench_e9_figures.dir/bench_e9_figures.cpp.o.d"
  "bench_e9_figures"
  "bench_e9_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
