// Region<D>: a convex lattice domain given as an axis-aligned box in
// monotone coordinates, intersected with the vertex set of a Stencil.
//
// This single type realizes all the domain families of the paper:
//   d=1: D(r) diamonds and their truncated versions (Fig. 1) are boxes
//        in (t+x, t-x);
//   d=2: octahedra P and tetrahedra W (Fig. 3) are boxes in
//        (t+x, t-x, t+y, t-y) — a box whose four intervals have equal
//        sums is an octahedron; half-overlapping sums give tetrahedra;
//   d=3: the analogous six-coordinate boxes (Section-6 conjecture).
//
// Because every dag arc is non-increasing in every monotone coordinate,
// the midpoint split() of a Region, ordered by how many upper halves a
// child occupies, is a topological partition in the sense of
// Definition 4 — reproducing the paper's 4-way diamond split, the
// 14-piece octahedron split and the 5-piece tetrahedron split exactly.
#pragma once

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "core/expect.hpp"
#include "core/logmath.hpp"
#include "geom/lattice.hpp"

namespace bsmp::geom {

template <int D>
class Region {
 public:
  static constexpr int K = kMono<D>;

  /// Box [lo_k, hi_k) in monotone coordinates over `stencil`'s vertex
  /// set. The stencil must outlive the region.
  Region(const Stencil<D>* stencil, std::array<int64_t, K> lo,
         std::array<int64_t, K> hi)
      : stencil_(stencil), lo_(lo), hi_(hi) {
    BSMP_REQUIRE(stencil != nullptr);
    for (int k = 0; k < K; ++k) BSMP_REQUIRE(lo_[k] <= hi_[k]);
  }

  const Stencil<D>& stencil() const { return *stencil_; }
  const std::array<int64_t, K>& lo() const { return lo_; }
  const std::array<int64_t, K>& hi() const { return hi_; }

  /// Largest box side (in monotone units).
  int64_t width() const {
    int64_t w = 0;
    for (int k = 0; k < K; ++k) w = std::max(w, hi_[k] - lo_[k]);
    return w;
  }

  bool in_box(const Point<D>& p) const {
    auto c = mono_coords<D>(p);
    for (int k = 0; k < K; ++k)
      if (c[k] < lo_[k] || c[k] >= hi_[k]) return false;
    return true;
  }

  bool contains(const Point<D>& p) const {
    return stencil_->is_vertex(p) && in_box(p);
  }

  /// Inclusive time range [t_min, t_max] implied by the box and the
  /// stencil horizon; empty ranges have t_min > t_max.
  std::pair<int64_t, int64_t> time_range() const {
    int64_t tmin = 0;
    int64_t tmax = stencil_->horizon - 1;
    for (int i = 0; i < D; ++i) {
      int64_t sum_lo = lo_[2 * i] + lo_[2 * i + 1];
      int64_t sum_hi = (hi_[2 * i] - 1) + (hi_[2 * i + 1] - 1);
      tmin = std::max(tmin, core::div_ceil(sum_lo, 2));
      tmax = std::min(tmax, core::div_floor(sum_hi, 2));
    }
    return {tmin, tmax};
  }

  /// Inclusive spatial range [x_min, x_max] in dimension i at time t.
  std::pair<int64_t, int64_t> x_range(int i, int64_t t) const {
    int64_t xmin = std::max<int64_t>(0, lo_[2 * i] - t);
    int64_t xmax = std::min(stencil_->extent[i] - 1, hi_[2 * i] - 1 - t);
    xmin = std::max(xmin, t - hi_[2 * i + 1] + 1);
    xmax = std::min(xmax, t - lo_[2 * i + 1]);
    return {xmin, xmax};
  }

  /// Number of lattice points in the region (exact).
  int64_t count() const {
    auto [tmin, tmax] = time_range();
    int64_t total = 0;
    for (int64_t t = tmin; t <= tmax; ++t) {
      int64_t rows = 1;
      for (int i = 0; i < D; ++i) {
        auto [a, b] = x_range(i, t);
        if (a > b) {
          rows = 0;
          break;
        }
        rows *= (b - a + 1);
      }
      total += rows;
    }
    return total;
  }

  /// First point in topological (t, then x lexicographic) order, or
  /// nullopt if the region is empty.
  std::optional<Point<D>> first_point() const {
    auto [tmin, tmax] = time_range();
    for (int64_t t = tmin; t <= tmax; ++t) {
      Point<D> p;
      p.t = t;
      bool ok = true;
      for (int i = 0; i < D; ++i) {
        auto [a, b] = x_range(i, t);
        if (a > b) {
          ok = false;
          break;
        }
        p.x[i] = a;
      }
      if (ok) return p;
    }
    return std::nullopt;
  }

  bool empty() const { return !first_point().has_value(); }

  /// Visit every point in topological order: t ascending, then x
  /// lexicographic. Within one time level no point depends on another,
  /// and all dependence arcs point to strictly smaller t, so this order
  /// is a valid execution order.
  template <class F>
  void for_each(F&& visit) const {
    auto [tmin, tmax] = time_range();
    for (int64_t t = tmin; t <= tmax; ++t) for_each_at_time(t, visit);
  }

  /// All points as a vector (small regions / tests only).
  std::vector<Point<D>> points() const {
    std::vector<Point<D>> v;
    for_each([&](const Point<D>& p) { v.push_back(p); });
    return v;
  }

  /// Midpoint split into at most 2^K children, in topological order
  /// (children sorted by the number of upper halves they occupy; equal
  /// counts are mutually independent). Empty children are dropped.
  /// Coordinates with a side of length < 2 are not split.
  std::vector<Region> split() const {
    std::array<int64_t, K> mid;
    std::array<bool, K> splits;
    int nsplit = 0;
    for (int k = 0; k < K; ++k) {
      splits[k] = (hi_[k] - lo_[k]) >= 2;
      mid[k] = lo_[k] + (hi_[k] - lo_[k]) / 2;
      if (splits[k]) ++nsplit;
    }
    BSMP_REQUIRE_MSG(nsplit > 0, "cannot split a region of width 1");

    struct Child {
      Region r;
      int uppers;
    };
    std::vector<Child> kids;
    for (unsigned mask = 0; mask < (1u << K); ++mask) {
      std::array<int64_t, K> clo = lo_, chi = hi_;
      bool valid = true;
      int uppers = 0;
      for (int k = 0; k < K; ++k) {
        bool up = (mask >> k) & 1u;
        if (!splits[k]) {
          if (up) {
            valid = false;  // no upper half for unsplit coordinates
            break;
          }
          continue;
        }
        if (up) {
          clo[k] = mid[k];
          ++uppers;
        } else {
          chi[k] = mid[k];
        }
      }
      if (!valid) continue;
      Region child(stencil_, clo, chi);
      if (child.empty()) continue;
      kids.push_back({std::move(child), uppers});
    }
    std::stable_sort(kids.begin(), kids.end(),
                     [](const Child& a, const Child& b) {
                       return a.uppers < b.uppers;
                     });
    std::vector<Region> out;
    out.reserve(kids.size());
    for (auto& k : kids) out.push_back(std::move(k.r));
    return out;
  }

  /// Visit every point of the preboundary Γin(U): vertices outside U
  /// that are predecessors of some vertex of U (Section 3). Exact,
  /// computed over the lower shell of depth reach(), one *row* (fixed
  /// t and outer coordinates, innermost x free) at a time: per row the
  /// qualifying points form a union of at most 2D+1 intervals (one per
  /// successor kind), assembled by interval arithmetic instead of a
  /// per-point successor scan — O(rows) setup, no allocation. Each
  /// point is visited exactly once, in the same (slab, t, x ascending)
  /// order the point-scan produced.
  template <class F>
  void preboundary_visit(F&& visit) const {
    preboundary_rows([&](int64_t t, std::array<int64_t, D>& x,
                         const IvSet& s) { visit_rowset(t, x, s, visit); });
  }

  /// The preboundary as a vector (materializing form of
  /// preboundary_visit).
  std::vector<Point<D>> preboundary() const {
    std::vector<Point<D>> out;
    preboundary_visit([&](const Point<D>& q) { out.push_back(q); });
    return out;
  }

  /// |Γin(U)| without materializing the vector: sums the per-row
  /// interval lengths of the same decomposition preboundary_visit
  /// walks, so equality with preboundary().size() is exact (asserted
  /// by the region property tests and by the executor's validation
  /// mode) — but no per-point work at all.
  int64_t preboundary_count() const {
    int64_t n = 0;
    preboundary_rows([&](int64_t, std::array<int64_t, D>&,
                         const IvSet& s) { n += s.total(); });
    return n;
  }

  /// O(1) out-set membership: q is in the out-set of U iff q is a
  /// vertex of U and some successor *position* of q is not a vertex of
  /// U (positions past the time horizon are not vertices, so the final
  /// rows of a computation always qualify). Equivalent to scanning
  /// outset() for q — every arc raises each monotone coordinate, so a
  /// point all of whose successors stay in the box is never collected
  /// by the shell scan either.
  bool in_outset(const Point<D>& q) const {
    if (!contains(q)) return false;
    std::array<Point<D>, K + 1> succ;
    int ns = stencil_->succ_positions(q, succ);
    for (int s = 0; s < ns; ++s)
      if (!contains(succ[s])) return true;
    return false;
  }

  /// Visit every point of the out-set: vertices of U with a successor
  /// *position* outside U (including positions past the time horizon).
  /// Each point is visited exactly once, in slab-scan order (the order
  /// outset() returns), assembled per row by the same interval
  /// arithmetic as preboundary_visit. No allocation.
  template <class F>
  void outset_visit(F&& visit) const {
    outset_rows([&](int64_t t, std::array<int64_t, D>& x, const IvSet& s) {
      visit_rowset(t, x, s, visit);
    });
  }

  /// Visit the out-set as maximal innermost-dimension runs: f(p, hi)
  /// stands for the points p, p+e_{D-1}, ..., up to x_{D-1} = hi.
  /// Flattening each run recovers outset_visit's exact element order;
  /// the executor stages a whole run with one contiguous slab insert.
  template <class F>
  void outset_spans(F&& f) const {
    outset_rows([&](int64_t t, std::array<int64_t, D>& x, const IvSet& s) {
      Point<D> p;
      p.t = t;
      for (int i = 0; i + 1 < D; ++i) p.x[i] = x[i];
      for (int i = 0; i < s.n; ++i) {
        p.x[D - 1] = s.iv[i].first;
        f(p, s.iv[i].second);
      }
    });
  }

  /// The out-set as a vector (materializing form of outset_visit).
  std::vector<Point<D>> outset() const {
    std::vector<Point<D>> out;
    outset_visit([&](const Point<D>& q) { out.push_back(q); });
    return out;
  }

  /// Out-set size without materializing the vector — sums the per-row
  /// interval lengths of the decomposition outset_visit walks, so
  /// equality with outset().size() is exact.
  int64_t outset_count() const {
    int64_t n = 0;
    outset_rows([&](int64_t, std::array<int64_t, D>&, const IvSet& s) {
      n += s.total();
    });
    return n;
  }

  /// Visit the points of this region's out-set that are NOT in
  /// `parent`'s out-set — i.e. child out-set points all of whose
  /// successor positions stay inside `parent`. Same row decomposition
  /// and visit order as outset_visit, with the parent's out-set
  /// predicate subtracted per row as intervals. The executor's
  /// retention filter (erase child staging no later sibling can read)
  /// is exactly this set.
  template <class F>
  void outset_visit_minus(const Region& parent, F&& visit) const {
    constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;
    IvSet ps;
    outset_rows([&](int64_t t, std::array<int64_t, D>& x, const IvSet& s) {
      row_succ_set(parent, t, x, -kInf, kInf, /*inside=*/false, ps);
      Point<D> p;
      p.t = t;
      for (int i = 0; i + 1 < D; ++i) p.x[i] = x[i];
      for (int i = 0; i < s.n; ++i) {
        int64_t cur = s.iv[i].first;
        const int64_t end = s.iv[i].second;
        for (int j = 0; j < ps.n && cur <= end; ++j) {
          if (ps.iv[j].second < cur) continue;
          if (ps.iv[j].first > end) break;
          for (int64_t xx = cur; xx < ps.iv[j].first; ++xx) {
            p.x[D - 1] = xx;
            visit(p);
          }
          cur = ps.iv[j].second + 1;
        }
        for (int64_t xx = cur; xx <= end; ++xx) {
          p.x[D - 1] = xx;
          visit(p);
        }
      }
    });
  }

  /// Visit every point of the region at one time level.
  template <class F>
  void for_each_at_time(int64_t t, F&& visit) const {
    if (t < 0 || t >= stencil_->horizon) return;
    Point<D> p;
    p.t = t;
    std::array<std::pair<int64_t, int64_t>, D> r;
    for (int i = 0; i < D; ++i) {
      r[i] = x_range(i, t);
      if (r[i].first > r[i].second) return;
    }
    if constexpr (D == 1) {
      for (int64_t x0 = r[0].first; x0 <= r[0].second; ++x0) {
        p.x[0] = x0;
        visit(p);
      }
    } else if constexpr (D == 2) {
      for (int64_t x0 = r[0].first; x0 <= r[0].second; ++x0) {
        p.x[0] = x0;
        for (int64_t x1 = r[1].first; x1 <= r[1].second; ++x1) {
          p.x[1] = x1;
          visit(p);
        }
      }
    } else {
      static_assert(D == 3);
      for (int64_t x0 = r[0].first; x0 <= r[0].second; ++x0) {
        p.x[0] = x0;
        for (int64_t x1 = r[1].first; x1 <= r[1].second; ++x1) {
          p.x[1] = x1;
          for (int64_t x2 = r[2].first; x2 <= r[2].second; ++x2) {
            p.x[2] = x2;
            visit(p);
          }
        }
      }
    }
  }

 private:
  // ---- Row-interval boundary machinery ---------------------------------
  //
  // For a fixed row (time t and the outer spatial coordinates fixed,
  // innermost x = x_{D-1} free), every monotone coordinate of a
  // successor position is linear in x with coefficient 0 or ±1, so both
  // "this successor kind exists" (stays on the mesh) and "it lands
  // inside a target box" are intervals in x. The boundary predicates
  // therefore collapse to per-row unions of at most 2(2D+1) intervals,
  // computed in O(1) per row instead of a per-point successor scan.
  // The row decomposition and the ascending-x interval walk reproduce
  // the point-scan visit order exactly, so the fast and scan forms are
  // interchangeable point for point (pinned by the region property
  // tests and by the executor's validation mode).

  // Inclusive intervals [lo, hi] over the innermost coordinate; empty
  // candidates are dropped on add(). Capacity covers the outside
  // predicate's worst case: two intervals per successor kind.
  struct IvSet {
    int n = 0;
    std::array<std::pair<int64_t, int64_t>, 2 * (2 * D + 1)> iv;
    void add(int64_t lo, int64_t hi) {
      if (lo <= hi) iv[n++] = {lo, hi};
    }
    // Sort by lower end and fuse overlapping/adjacent intervals so a
    // walk visits each point exactly once, in ascending order.
    // Insertion sort: n is tiny and usually already ordered.
    void normalize() {
      for (int i = 1; i < n; ++i) {
        auto v = iv[i];
        int j = i;
        for (; j > 0 && v < iv[j - 1]; --j) iv[j] = iv[j - 1];
        iv[j] = v;
      }
      int m = 0;
      for (int i = 0; i < n; ++i) {
        if (m > 0 && iv[i].first <= iv[m - 1].second + 1) {
          iv[m - 1].second = std::max(iv[m - 1].second, iv[i].second);
        } else {
          iv[m++] = iv[i];
        }
      }
      n = m;
    }
    int64_t total() const {
      int64_t s = 0;
      for (int i = 0; i < n; ++i) s += iv[i].second - iv[i].first + 1;
      return s;
    }
  };

  // The x-intervals of one successor kind over a row: where the
  // successor position exists ([elo, ehi]) and where it additionally
  // lands inside `reg` ([clo, chi], a subset). `dim` < D steps that
  // spatial coordinate by `step` at t+1; dim == D is the self lane at
  // t+m. All intervals are in source-x terms.
  static void succ_intervals(const Region& reg, int64_t t,
                             const std::array<int64_t, D>& xout, int dim,
                             int step, int64_t& elo, int64_t& ehi,
                             int64_t& clo, int64_t& chi) {
    const Stencil<D>& st = *reg.stencil_;
    constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;
    elo = -kInf;
    ehi = kInf;
    const int64_t tp = (dim == D) ? t + st.m : t + 1;
    const int64_t sx = (dim == D - 1) ? step : 0;  // innermost shift
    // Existence: a stepped spatial coordinate must stay on the mesh
    // (succ_positions emits no off-mesh spatial successors).
    if (dim >= 0 && dim < D - 1) {
      int64_t xj = xout[dim] + step;
      if (xj < 0 || xj >= st.extent[dim]) {
        ehi = elo - 1;
        clo = 1;
        chi = 0;
        return;
      }
    } else if (dim == D - 1) {
      elo = std::max(elo, int64_t{0} - sx);
      ehi = std::min(ehi, st.extent[D - 1] - 1 - sx);
    }
    clo = elo;
    chi = ehi;
    // Containment in reg: the successor must be a vertex...
    if (tp >= st.horizon) {
      clo = 1;
      chi = 0;
      return;
    }
    // ...on the mesh in the outer dimensions (the inner one is covered
    // by the existence bounds above, which clo/chi inherit)...
    for (int i = 0; i + 1 < D; ++i) {
      int64_t xi = xout[i] + (i == dim ? step : 0);
      if (xi < 0 || xi >= st.extent[i]) {
        clo = 1;
        chi = 0;
        return;
      }
      // ...and inside reg's box: row-constant coordinates first.
      if (tp + xi < reg.lo_[2 * i] || tp + xi >= reg.hi_[2 * i] ||
          tp - xi < reg.lo_[2 * i + 1] || tp - xi >= reg.hi_[2 * i + 1]) {
        clo = 1;
        chi = 0;
        return;
      }
    }
    // Innermost pair of monotone coordinates, as bounds on x:
    // lo <= tp + (x+sx) < hi  and  lo' <= tp - (x+sx) < hi'.
    clo = std::max(clo, reg.lo_[K - 2] - tp - sx);
    chi = std::min(chi, reg.hi_[K - 2] - 1 - tp - sx);
    clo = std::max(clo, tp - reg.hi_[K - 1] + 1 - sx);
    chi = std::min(chi, tp - reg.lo_[K - 1] - sx);
  }

  // The visit set of one row, clipped to row bounds [a, b]: the x whose
  // point has some successor kind that exists and lands inside `reg`
  // (inside = true; the preboundary predicate) or exists and lands
  // outside `reg` (inside = false; the out-set predicate).
  static void row_succ_set(const Region& reg, int64_t t,
                           const std::array<int64_t, D>& xout, int64_t a,
                           int64_t b, bool inside, IvSet& out) {
    out.n = 0;
    auto one = [&](int dim, int step) {
      int64_t elo, ehi, clo, chi;
      succ_intervals(reg, t, xout, dim, step, elo, ehi, clo, chi);
      if (inside) {
        out.add(std::max(clo, a), std::min(chi, b));
      } else if (clo > chi) {
        out.add(std::max(elo, a), std::min(ehi, b));
      } else {
        out.add(std::max(elo, a), std::min({ehi, clo - 1, b}));
        out.add(std::max({elo, chi + 1, a}), std::min(ehi, b));
      }
    };
    for (int i = 0; i < D; ++i) {
      one(i, -1);
      one(i, +1);
    }
    one(D, 0);  // self lane
    out.normalize();
  }

  // Iterate the rows of region S at time t (outer coordinates
  // lexicographic), yielding inclusive innermost bounds — the row
  // decomposition of for_each_at_time.
  template <class RowF>
  static void rows_at(const Region& S, int64_t t, RowF&& f) {
    if (t < 0 || t >= S.stencil_->horizon) return;
    std::array<std::pair<int64_t, int64_t>, D> r;
    for (int i = 0; i < D; ++i) {
      r[i] = S.x_range(i, t);
      if (r[i].first > r[i].second) return;
    }
    std::array<int64_t, D> x{};
    if constexpr (D == 1) {
      f(t, x, r[0].first, r[0].second);
    } else if constexpr (D == 2) {
      for (int64_t x0 = r[0].first; x0 <= r[0].second; ++x0) {
        x[0] = x0;
        f(t, x, r[1].first, r[1].second);
      }
    } else {
      static_assert(D == 3);
      for (int64_t x0 = r[0].first; x0 <= r[0].second; ++x0) {
        x[0] = x0;
        for (int64_t x1 = r[1].first; x1 <= r[1].second; ++x1) {
          x[1] = x1;
          f(t, x, r[2].first, r[2].second);
        }
      }
    }
  }

  // All rows of S in for_each order: t ascending, then rows_at.
  template <class RowF>
  static void rows_of(const Region& S, RowF&& f) {
    auto [tmin, tmax] = S.time_range();
    for (int64_t t = tmin; t <= tmax; ++t) rows_at(S, t, f);
  }

  // Walk a normalized row set, visiting points in ascending x.
  template <class F>
  static void visit_rowset(int64_t t, const std::array<int64_t, D>& x,
                           const IvSet& s, F&& visit) {
    Point<D> p;
    p.t = t;
    for (int i = 0; i + 1 < D; ++i) p.x[i] = x[i];
    for (int i = 0; i < s.n; ++i) {
      for (int64_t xx = s.iv[i].first; xx <= s.iv[i].second; ++xx) {
        p.x[D - 1] = xx;
        visit(p);
      }
    }
  }

  // Drive the preboundary slab decomposition, yielding each nonempty
  // row set (already normalized).
  template <class RowSetF>
  void preboundary_rows(RowSetF&& f) const {
    const int64_t R = stencil_->reach();
    IvSet s;
    for (int k = 0; k < K; ++k) {
      // Slab k: coordinate k in [lo_k - R, lo_k); coordinates j < k
      // inside the box (so each shell point appears in exactly one
      // slab); coordinates j > k anywhere a predecessor can be.
      std::array<int64_t, K> slo = lo_, shi = hi_;
      slo[k] = lo_[k] - R;
      shi[k] = lo_[k];
      for (int j = k + 1; j < K; ++j) slo[j] = lo_[j] - R;
      Region slab(stencil_, slo, shi);
      rows_of(slab, [&](int64_t t, std::array<int64_t, D>& x, int64_t a,
                        int64_t b) {
        row_succ_set(*this, t, x, a, b, /*inside=*/true, s);
        if (s.n > 0) f(t, x, s);
      });
    }
  }

  // Drive the out-set decomposition — upper shell slabs, then horizon
  // rows minus the upper-slab overlap — yielding each nonempty row set.
  template <class RowSetF>
  void outset_rows(RowSetF&& f) const {
    const int64_t R = stencil_->reach();
    IvSet s;
    // Upper shell slabs (successors that leave the box).
    for (int k = 0; k < K; ++k) {
      std::array<int64_t, K> slo = lo_, shi = hi_;
      slo[k] = std::max(lo_[k], hi_[k] - R);
      for (int j = 0; j < k; ++j) shi[j] = std::max(lo_[j], hi_[j] - R);
      Region slab(stencil_, slo, shi);
      rows_of(slab, [&](int64_t t, std::array<int64_t, D>& x, int64_t a,
                        int64_t b) {
        row_succ_set(*this, t, x, a, b, /*inside=*/false, s);
        if (s.n > 0) f(t, x, s);
      });
    }
    // Horizon rows (successors that leave the computation in time):
    // rows with t >= horizon - m have their self-lane successor past
    // the horizon. Skip the part already collected by an upper slab:
    // a point lies in one iff some monotone coordinate c_k >= hi_k - R,
    // which over a row is a row-constant test per outer coordinate
    // plus two half-lines in the innermost x.
    int64_t t_top = stencil_->horizon - stencil_->m;
    auto [tmin, tmax] = time_range();
    for (int64_t t = std::max(tmin, t_top); t <= tmax; ++t) {
      rows_at(*this, t, [&](int64_t tt, std::array<int64_t, D>& x,
                            int64_t a, int64_t b) {
        for (int i = 0; i + 1 < D; ++i) {
          if (tt + x[i] >= hi_[2 * i] - R || tt - x[i] >= hi_[2 * i + 1] - R)
            return;  // the whole row lies in an upper slab
        }
        // Keep x with tt + x < hi_[K-2] - R and tt - x < hi_[K-1] - R.
        int64_t ka = std::max(a, tt - (hi_[K - 1] - R) + 1);
        int64_t kb = std::min(b, hi_[K - 2] - R - 1 - tt);
        if (ka > kb) return;
        row_succ_set(*this, tt, x, ka, kb, /*inside=*/false, s);
        if (s.n > 0) f(tt, x, s);
      });
    }
  }

  const Stencil<D>* stencil_;
  std::array<int64_t, K> lo_, hi_;
};

}  // namespace bsmp::geom
