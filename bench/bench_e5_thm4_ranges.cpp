// E5 — Theorem 4 (= Theorem 1 at d=1): the multiprocessor simulation
// with memory rearrangement and the two-regime schedule. Sweeps m
// through the four ranges at fixed (n,p) and sweeps p at fixed m,
// comparing the measured slowdown with (n/p) * A(n,m,p).
#include "bench_common.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

std::int64_t pick_s(std::int64_t n, std::int64_t m, std::int64_t p) {
  auto s = static_cast<std::int64_t>(
      analytic::s_star((double)n, (double)m, (double)p));
  s = std::max<std::int64_t>(1, s);
  while (s > 1 && s * p > n) s /= 2;
  return s;
}

void emit() {
  {
    std::int64_t n = 256, p = 4;
    core::Table t("E5a: Theorem 4 — m sweep, n=256, p=4",
                  {"m", "range", "s*", "Tp/Tn", "bound (n/p)A", "ratio",
                   "util"});
    for (std::int64_t m : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
      auto g = workload::make_mix_guest<1>({n}, n, m, 7);
      auto ref = sim::reference_run<1>(g);
      sim::MultiprocConfig cfg;
      cfg.s = pick_s(n, m, p);
      auto res = sim::simulate_multiproc<1>(g, spec(1, n, p, m), cfg);
      bench::require_equivalent<1>(res, ref, "multiproc m-sweep");
      double bound = analytic::slowdown_bound(1, (double)n, (double)m,
                                              (double)p);
      t.add_row({(long long)m,
                 std::string(analytic::to_string(
                     analytic::classify_range(1, n, m, p))),
                 (long long)cfg.s, res.slowdown(), bound,
                 res.slowdown() / bound, res.utilization});
    }
    t.print(std::cout);
    std::cout << "# The four ranges of Theorem 1: ratio stays Θ(1) as the\n"
                 "# dominant mechanism shifts from cooperation to naive.\n\n";
  }
  {
    std::int64_t n = 256, m = 4;
    core::Table t("E5b: Theorem 4 — p sweep, n=256, m=4",
                  {"p", "Tp/Tn", "bound", "ratio", "Brent n/p",
                   "A measured"});
    for (std::int64_t p : {1, 2, 4, 8, 16}) {
      auto g = workload::make_mix_guest<1>({n}, n, m, 8);
      auto ref = sim::reference_run<1>(g);
      sim::MultiprocConfig cfg;
      cfg.s = pick_s(n, m, p);
      auto res = sim::simulate_multiproc<1>(g, spec(1, n, p, m), cfg);
      bench::require_equivalent<1>(res, ref, "multiproc p-sweep");
      double bound = analytic::slowdown_bound(1, (double)n, (double)m,
                                              (double)p);
      double brent = (double)n / (double)p;
      t.add_row({(long long)p, res.slowdown(), bound,
                 res.slowdown() / bound, brent, res.slowdown() / brent});
    }
    t.print(std::cout);
    std::cout << "# 'A measured' is the locality slowdown left after\n"
                 "# dividing out Brent's n/p.\n\n";
  }
  {
    // Section 4.2: the one-time memory rearrangement costs O(n^2 m / p)
    // and "its cost gives a contribution to the slowdown that vanishes
    // as the number of simulated steps increases". Sweep the horizon.
    std::int64_t n = 128, p = 4, m = 2;
    core::Table t("E5c: rearrangement amortization — n=128, p=4, m=2",
                  {"T", "Tp/Tn (steady)", "with preprocessing",
                   "preprocessing share"});
    for (std::int64_t T : {128, 256, 512, 1024}) {
      auto g = workload::make_mix_guest<1>({n}, T, m, 21);
      auto ref = sim::reference_run<1>(g);
      sim::MultiprocConfig cfg;
      cfg.s = pick_s(n, m, p);
      auto res = sim::simulate_multiproc<1>(g, spec(1, n, p, m), cfg);
      bench::require_equivalent<1>(res, ref, "amortization");
      double with_pre = (res.time + res.preprocess) / res.guest_time;
      t.add_row({(long long)T, res.slowdown(), with_pre,
                 res.preprocess / (res.time + res.preprocess)});
    }
    t.print(std::cout);
    std::cout << "# the preprocessing share vanishes as T grows — the\n"
                 "# paper's amortization argument, measured.\n\n";
  }
}

void BM_multiproc(benchmark::State& state) {
  std::int64_t p = state.range(0);
  auto g = workload::make_mix_guest<1>({128}, 128, 4, 7);
  sim::MultiprocConfig cfg;
  cfg.s = pick_s(128, 4, p);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_multiproc<1>(g, spec(1, 128, p, 4), cfg));
}
BENCHMARK(BM_multiproc)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BSMP_BENCH_MAIN(emit)
