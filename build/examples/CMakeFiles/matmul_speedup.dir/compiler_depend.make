# Empty compiler generated dependencies file for matmul_speedup.
# This may be replaced when dependencies are built.
