#include "engine/metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>

namespace bsmp::engine {

double SweepMetric::busy_s() const {
  double b = 0;
  for (const auto& p : per_point) b += p.run_s;
  return b;
}

double SweepMetric::occupancy() const {
  double denom = wall_s * static_cast<double>(pool_threads);
  return denom <= 0 ? 0.0 : busy_s() / denom;
}

void Metrics::record(SweepMetric m) {
  std::lock_guard<std::mutex> lk(mu_);
  sweeps_.push_back(std::move(m));
}

std::vector<SweepMetric> Metrics::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sweeps_;
}

std::size_t Metrics::num_sweeps() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sweeps_.size();
}

void Metrics::record_hot(HotPathMetric m) {
  std::lock_guard<std::mutex> lk(mu_);
  hot_.push_back(std::move(m));
}

std::vector<HotPathMetric> Metrics::hot_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hot_;
}

void Metrics::record_calibration(CalibrationSample s) {
  std::lock_guard<std::mutex> lk(mu_);
  calibration_.push_back(std::move(s));
}

std::vector<CalibrationSample> Metrics::calibration_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return calibration_;
}

void Metrics::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  sweeps_.clear();
  hot_.clear();
  calibration_.clear();
}

double MetricsReport::speedup() const {
  if (passes.size() < 2) return 1.0;
  double last = passes.back().seconds;
  return last > 0 ? passes.front().seconds / last : 0.0;
}

namespace {

// Labels are caller-controlled ASCII, but escape defensively so the
// artifact is always valid JSON.
void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void json_real(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

void json_tasks(std::ostream& os, const TaskStats& t) {
  os << "{\"spawned\": " << t.spawned << ", \"inlined\": " << t.inlined
     << ", \"stolen\": " << t.stolen << ", \"steal_ops\": " << t.steal_ops
     << ", \"join_waits\": " << t.join_waits;
  // Per-mechanism split: only phases that saw any fork/park activity.
  bool any = false;
  for (std::size_t i = 0; i < kNumForkPhases; ++i) {
    const PhaseTaskStats& p = t.phase[i];
    if (p.spawned == 0 && p.inlined == 0 && p.join_waits == 0 &&
        p.park_ns == 0)
      continue;
    os << (any ? ", " : ", \"phases\": {");
    any = true;
    json_string(os, fork_phase_name(static_cast<ForkPhase>(i)));
    os << ": {\"spawned\": " << p.spawned << ", \"inlined\": " << p.inlined
       << ", \"join_waits\": " << p.join_waits
       << ", \"park_ns\": " << p.park_ns << "}";
  }
  if (any) os << "}";
  os << "}";
}

// Sparse [bucket, count] pairs; empty histograms serialize as [].
void json_hist(std::ostream& os,
               const std::array<std::uint64_t, trace::kHistBuckets>& h) {
  os << "[";
  bool first = true;
  for (int b = 0; b < trace::kHistBuckets; ++b) {
    if (h[b] == 0) continue;
    os << (first ? "" : ", ") << "[" << b << ", " << h[b] << "]";
    first = false;
  }
  os << "]";
}

}  // namespace

void MetricsReport::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"bsmp-metrics-v3\",\n  \"name\": ";
  json_string(os, name);
  os << ",\n  \"speedup\": ";
  json_real(os, speedup());
  os << ",\n  \"manifest\": {\n    \"name\": ";
  json_string(os, manifest.name);
  os << ",\n    \"git_sha\": ";
  json_string(os, manifest.git_sha);
  os << ",\n    \"build_type\": ";
  json_string(os, manifest.build_type);
  os << ",\n    \"compiler\": ";
  json_string(os, manifest.compiler);
  os << ",\n    \"hardware_threads\": " << manifest.hardware_threads
     << ",\n    \"num_cpus\": " << manifest.num_cpus
     << ",\n    \"hostname\": ";
  json_string(os, manifest.hostname);
  os << ",\n    \"simd_isa\": ";
  json_string(os, manifest.simd_isa);
  os << ",\n    \"trace_compiled\": " << (manifest.trace_compiled ? 1 : 0)
     << ",\n    \"trace_enabled\": " << (manifest.trace_enabled ? 1 : 0);
  for (const auto& [k, v] : manifest.knobs) {
    os << ",\n    ";
    json_string(os, k);
    os << ": ";
    json_string(os, v);
  }
  if (!manifest.trace_file.empty()) {
    os << ",\n    \"trace_file\": ";
    json_string(os, manifest.trace_file);
    os << ",\n    \"trace_events\": " << manifest.trace_events
       << ",\n    \"trace_dropped\": " << manifest.trace_dropped
       << ",\n    \"trace_digest\": ";
    json_string(os, manifest.trace_digest);
  }
  os << "\n  },\n  \"passes\": [";
  for (std::size_t pi = 0; pi < passes.size(); ++pi) {
    const auto& pass = passes[pi];
    os << (pi ? ",\n    {" : "\n    {");
    os << "\n      \"threads\": " << pass.threads << ",\n      \"seconds\": ";
    json_real(os, pass.seconds);
    os << ",\n      \"cache\": {\"hits\": " << pass.cache.hits
       << ", \"misses\": " << pass.cache.misses
       << ", \"builds\": " << pass.cache.builds << ", \"hit_rate\": ";
    json_real(os, pass.cache.hit_rate());
    os << ", \"evictions\": " << pass.cache.evictions
       << ", \"bytes\": " << pass.cache.bytes;
    os << "},\n      \"tasks\": ";
    json_tasks(os, pass.tasks);
    os << ",\n      \"mem\": {\"cold_allocs\": " << pass.mem.cold_allocs
       << ", \"slab_reuses\": " << pass.mem.slab_reuses
       << ", \"releases\": " << pass.mem.releases
       << ", \"scratch_checkouts\": " << pass.mem.scratch_checkouts
       << ", \"scratch_cold\": " << pass.mem.scratch_cold
       << ",\n              \"bytes_held\": " << pass.mem.bytes_held
       << ", \"bytes_live\": " << pass.mem.bytes_live
       << ", \"peak_bytes\": " << pass.mem.peak_bytes << "}";
    os << ",\n      \"sweeps\": [";
    for (std::size_t si = 0; si < pass.sweeps.size(); ++si) {
      const auto& sw = pass.sweeps[si];
      os << (si ? ",\n        {" : "\n        {");
      os << "\n          \"label\": ";
      json_string(os, sw.label);
      os << ",\n          \"points\": " << sw.points
         << ", \"pool_threads\": " << sw.pool_threads << ",\n          "
         << "\"wall_s\": ";
      json_real(os, sw.wall_s);
      os << ", \"busy_s\": ";
      json_real(os, sw.busy_s());
      os << ", \"occupancy\": ";
      json_real(os, sw.occupancy());
      os << ",\n          \"tasks\": ";
      json_tasks(os, sw.tasks);
      os << ",\n          \"per_point\": [";
      for (std::size_t i = 0; i < sw.per_point.size(); ++i) {
        const auto& pt = sw.per_point[i];
        os << (i ? ", " : "") << "{\"index\": " << pt.index
           << ", \"queue_wait_s\": ";
        json_real(os, pt.queue_wait_s);
        os << ", \"run_s\": ";
        json_real(os, pt.run_s);
        os << "}";
      }
      os << "]\n        }";
    }
    os << (pass.sweeps.empty() ? "]" : "\n      ]");
    os << ",\n      \"hot\": [";
    for (std::size_t hi = 0; hi < pass.hot.size(); ++hi) {
      const auto& h = pass.hot[hi];
      os << (hi ? ",\n        {" : "\n        {");
      os << "\n          \"label\": ";
      json_string(os, h.label);
      os << ",\n          \"vertices\": " << h.vertices
         << ", \"seconds\": ";
      json_real(os, h.seconds);
      os << ", \"vertices_per_sec\": ";
      json_real(os, h.vertices_per_sec());
      os << ",\n          \"peak_staging_words\": " << h.peak_staging_words
         << ", \"staging_allocs\": " << h.staging_allocs
         << ",\n          \"lanes\": " << h.lanes
         << ", \"scenarios_per_sec\": ";
      json_real(os, h.scenarios_per_sec());
      os << ",\n          \"simd_isa\": ";
      json_string(os, h.simd_isa);
      os << ", \"simd_lanes\": " << h.simd_lanes;
      os << "\n        }";
    }
    os << (pass.hot.empty() ? "]" : "\n      ]");
    if (!pass.histograms.empty()) {
      os << ",\n      \"histograms\": {\n        \"spans\": {";
      bool first_cat = true;
      for (int c = 0; c < trace::kNumCats; ++c) {
        bool any = false;
        for (auto n : pass.histograms.span_ns[static_cast<std::size_t>(c)])
          if (n != 0) any = true;
        if (!any) continue;
        os << (first_cat ? "" : ", ");
        json_string(os, trace::cat_name(static_cast<trace::Cat>(c)));
        os << ": ";
        json_hist(os, pass.histograms.span_ns[static_cast<std::size_t>(c)]);
        first_cat = false;
      }
      os << "},\n        \"steal_latency_ns\": ";
      json_hist(os, pass.histograms.steal_latency_ns);
      os << "\n      }";
    }
    if (!pass.attribution.empty() || !pass.calibration.empty()) {
      const Attribution& at = pass.attribution;
      os << ",\n      \"attribution\": {\n        \"trusted\": "
         << (at.trusted() ? 1 : 0) << ", \"dropped\": " << at.dropped
         << ", \"spans\": " << at.spans
         << ",\n        \"total_self_ns\": " << at.total_self_ns
         << ", \"critical_path_ns\": " << at.critical_path_ns
         << ",\n        \"mechanisms\": {";
      bool first_m = true;
      for (std::size_t i = 0; i < kNumMechanisms; ++i) {
        const MechanismSlice& sl = at.mechanism[i];
        if (sl.spans == 0 && sl.self_ns == 0) continue;
        os << (first_m ? "" : ", ");
        json_string(os, mechanism_name(static_cast<Mechanism>(i)));
        os << ": {\"self_ns\": " << sl.self_ns << ", \"spans\": " << sl.spans
           << "}";
        first_m = false;
      }
      os << "},\n        \"phases\": {";
      bool first_p = true;
      for (std::size_t pj = 0; pj < kNumForkPhases; ++pj) {
        bool any = false;
        for (auto v : at.phase[pj])
          if (v != 0) any = true;
        if (!any) continue;
        os << (first_p ? "" : ", ");
        json_string(os, fork_phase_name(static_cast<ForkPhase>(pj)));
        os << ": {";
        bool first_c = true;
        for (std::size_t i = 0; i < kNumMechanisms; ++i) {
          if (at.phase[pj][i] == 0) continue;
          os << (first_c ? "" : ", ");
          json_string(os, mechanism_name(static_cast<Mechanism>(i)));
          os << ": " << at.phase[pj][i];
          first_c = false;
        }
        os << "}";
        first_p = false;
      }
      os << "}";
      if (!pass.calibration.empty()) {
        os << ",\n        \"calibration_points\": [";
        for (std::size_t ci = 0; ci < pass.calibration.size(); ++ci) {
          const CalibrationSample& cs = pass.calibration[ci];
          os << (ci ? ",\n          {" : "\n          {");
          os << "\"n\": " << cs.n << ", \"m\": " << cs.m
             << ", \"p\": " << cs.p << ", \"s\": ";
          json_real(os, cs.s);
          os << ", \"range\": ";
          json_string(os, cs.range);
          os << ", \"holdout\": " << (cs.holdout ? 1 : 0)
             << ",\n           \"slowdown\": ";
          json_real(os, cs.slowdown);
          os << ", \"slow_reloc\": ";
          json_real(os, cs.slow_reloc);
          os << ", \"slow_exec\": ";
          json_real(os, cs.slow_exec);
          os << ", \"slow_comm\": ";
          json_real(os, cs.slow_comm);
          os << ",\n           \"term_reloc\": ";
          json_real(os, cs.term_reloc);
          os << ", \"term_exec\": ";
          json_real(os, cs.term_exec);
          os << ", \"term_comm\": ";
          json_real(os, cs.term_comm);
          os << "}";
        }
        os << "\n        ]";
      }
      os << "\n      }";
    }
    os << "\n    }";
  }
  os << (passes.empty() ? "]" : "\n  ]") << "\n}\n";
}

bool MetricsReport::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f);
  return static_cast<bool>(f);
}

std::string metrics_filename(const std::string& name) {
  return "metrics_" + name + ".json";
}

std::string metrics_dir() {
  const char* v = std::getenv("BSMP_METRICS_DIR");
  return (v != nullptr && *v != '\0') ? std::string(v) : std::string("metrics");
}

bool ensure_metrics_dir() {
  std::error_code ec;
  std::filesystem::create_directories(metrics_dir(), ec);
  return !ec;
}

std::string metrics_output_path(const std::string& name) {
  ensure_metrics_dir();
  return (std::filesystem::path(metrics_dir()) / metrics_filename(name))
      .string();
}

std::string trace_output_path(const std::string& name) {
  ensure_metrics_dir();
  return (std::filesystem::path(metrics_dir()) / ("trace_" + name + ".json"))
      .string();
}

}  // namespace bsmp::engine
