// Proposition 3's constants made executable, and the Definition-6
// separator inequalities measured on the real domain families.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/figures.hpp"
#include "sep/bounds.hpp"
#include "sep/executor.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;
using sep::SeparatorSpec;

TEST(SeparatorSpec, PaperConstants) {
  auto d1 = sep::diamond_separator();
  EXPECT_EQ(d1.q, 4);
  EXPECT_NEAR(d1.c, 2.828, 0.01);
  EXPECT_DOUBLE_EQ(d1.gamma, 0.5);
  EXPECT_DOUBLE_EQ(d1.delta, 0.25);

  auto p2 = sep::octahedron_separator();
  EXPECT_EQ(p2.q, 14);
  EXPECT_NEAR(p2.gamma, 2.0 / 3.0, 1e-12);

  auto w2 = sep::tetrahedron_separator();
  EXPECT_EQ(w2.q, 5);
}

TEST(SeparatorSpec, Sigma0Formula) {
  // σ0 = q c δ^γ / (1 - δ^γ); for the diamond: 4 * 2.828 * 0.5 / 0.5.
  auto d1 = sep::diamond_separator();
  EXPECT_NEAR(d1.sigma0(), 4.0 * 2.0 * std::sqrt(2.0), 1e-9);
  // Octahedron: δ^γ = (1/2)^(2/3) ~ 0.63.
  auto p2 = sep::octahedron_separator();
  double dg = std::pow(0.5, 2.0 / 3.0);
  EXPECT_NEAR(p2.sigma0(), 14.0 * p2.c * dg / (1 - dg), 1e-9);
}

TEST(SeparatorSpec, AdmissibilityCondition) {
  // α <= (1-γ)/γ: d=1 diamond admits α=1 (f(x)=x); d=2 octahedron
  // admits α=1/2 (f(x)=sqrt(x)) but not α=1.
  EXPECT_TRUE(sep::diamond_separator().admits(1.0));
  EXPECT_TRUE(sep::octahedron_separator().admits(0.5));
  EXPECT_FALSE(sep::octahedron_separator().admits(1.0));
  EXPECT_THROW(sep::octahedron_separator().tau0(1.0, 1.0),
               bsmp::precondition_error);
}

TEST(SeparatorSpec, BoundsArePositiveAndMonotone) {
  auto d1 = sep::diamond_separator();
  EXPECT_GT(d1.tau0(1.0, 1.0), 0.0);
  EXPECT_LT(d1.space_bound(100), d1.space_bound(400));
  EXPECT_LT(d1.time_bound(100, 1, 1), d1.time_bound(400, 1, 1));
  // σ(k) = σ0 sqrt(k): quadrupling k doubles the space bound.
  EXPECT_NEAR(d1.space_bound(400) / d1.space_bound(100), 2.0, 1e-9);
}

TEST(SeparatorMeasured, DiamondSatisfiesDefinition6) {
  // Measured |Γin| <= g(|U|) and |Ui| <= δ|U| across scales.
  auto spec = sep::diamond_separator();
  geom::Stencil<1> st{{512}, 512, 1};
  for (int64_t r = 8; r <= 128; r *= 2) {
    auto d = geom::make_diamond(&st, 128, -r / 2, r);
    ASSERT_FALSE(d.empty());
    double k = static_cast<double>(d.count());
    EXPECT_LE(static_cast<double>(d.preboundary().size()),
              spec.g(k) + 8)
        << r;
    for (const auto& child : d.split())
      EXPECT_LE(static_cast<double>(child.count()), spec.delta * k + 4)
          << r;
  }
}

TEST(SeparatorMeasured, OctahedronSatisfiesDefinition6) {
  auto spec = sep::octahedron_separator();
  geom::Stencil<2> st{{64, 64}, 64, 1};
  for (int64_t r = 4; r <= 32; r *= 2) {
    auto p = geom::make_octahedron(&st, 32, -16, 32, -16, r);
    ASSERT_FALSE(p.empty());
    double k = static_cast<double>(p.count());
    // Lattice shells exceed the continuous constant by lower-order
    // terms; 2x headroom absorbs them at these sizes.
    EXPECT_LE(static_cast<double>(p.preboundary().size()),
              2.0 * spec.g(k) + 16)
        << r;
    for (const auto& child : p.split())
      EXPECT_LE(static_cast<double>(child.count()), spec.delta * k + 8)
          << r;
  }
}

TEST(SeparatorMeasured, TetrahedronSatisfiesDefinition6) {
  auto spec = sep::tetrahedron_separator();
  geom::Stencil<2> st{{64, 64}, 64, 1};
  for (int64_t r = 4; r <= 16; r *= 2) {
    auto w = geom::make_tetrahedron(&st, r, 0, r, -r, r);
    if (w.empty()) continue;
    double k = static_cast<double>(w.count());
    EXPECT_LE(static_cast<double>(w.preboundary().size()),
              3.0 * spec.g(k) + 16)
        << r;
    EXPECT_LE(static_cast<double>(w.split().size()), spec.q) << r;
  }
}

TEST(SeparatorMeasured, ExecutorWithinScaledProposition3Time) {
  // τ(k) <= C τ0 k loḡ k with the *paper's* τ0 and a fixed headroom C
  // covering the executor's per-word constants. The point: the measured
  // curve is dominated by the Prop-3 form uniformly in k.
  auto spec = sep::diamond_separator();
  double tau0 = spec.tau0(1.0, 1.0);
  auto g = workload::make_mix_guest<1>({256}, 256, 1, 2);
  for (int64_t r : {16, 32, 64, 128}) {
    sep::ExecutorConfig cfg;
    cfg.leaf_width = 1;
    cfg.f = hram::AccessFn::hierarchical(1, 1.0);
    sep::Executor<1> exec(&g, cfg);
    core::CostLedger ledger;
    exec.set_ledger(&ledger);
    auto d = geom::make_diamond(&g.stencil, 64, -r / 2, r);
    sep::ValueMap<1> staging;
    for (const auto& q : d.preboundary()) staging.emplace(q, 1);
    exec.execute(d, staging);
    double k = static_cast<double>(d.count());
    EXPECT_LE(ledger.total(), 16.0 * spec.time_bound(k, 1.0, 1.0))
        << "r=" << r << " tau0=" << tau0;
  }
}

TEST(SeparatorSpec, D3ConjectureSpecIsUsable) {
  auto d3 = sep::d3_separator_conjecture();
  EXPECT_TRUE(d3.admits(1.0 / 3.0));  // f(x) = x^(1/3) for d=3
  EXPECT_GT(d3.sigma0(), 0.0);
  EXPECT_GT(d3.tau0(1.0, 1.0 / 3.0), 0.0);
}
