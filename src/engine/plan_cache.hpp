// PlanCache: a thread-safe memo for the immutable artifacts sweep
// points rebuild over and over — separator-tree / Prop-2 plans
// (sched::Planner output), guest computations (sep::Executor input),
// and reference runs. Entries are shared across threads as
// shared_ptr-to-const: once built, an artifact is immutable, so any
// number of sweep points may read it concurrently.
//
// Keys carry the paper's plan identity — (d, domain family, width,
// horizon, m, access-fn tag) — plus an `aux` word folding whatever
// else the family needs (tile/leaf widths, space constants, seeds).
// Build-once semantics: if two threads miss on the same key at once,
// one builds while the other blocks on the entry and then shares the
// result — the builder runs exactly once per key.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <typeinfo>
#include <unordered_map>

#include "core/expect.hpp"
#include "engine/trace.hpp"

namespace bsmp::engine {

/// Discriminates what kind of artifact a key names (and thereby the
/// stored type); families never share entries.
enum class PlanFamily : int {
  kSchedule = 0,   ///< sched::Schedule<D> — Planner output, Prop-2 plan
  kGuest,          ///< sep::Guest<D> — Executor input
  kReference,      ///< sim::SimResult<D> of the direct guest run
  kUser,           ///< caller-defined artifacts
};

struct PlanKey {
  int d = 0;                     ///< lattice dimension D
  PlanFamily family = PlanFamily::kSchedule;
  std::int64_t width = 0;        ///< domain width / spatial extent
  std::int64_t horizon = 0;      ///< time extent T
  std::int64_t m = 0;            ///< memory density
  std::uint64_t access_tag = 0;  ///< identity of the access function
  std::uint64_t aux = 0;         ///< folded extras (widths, consts, seed)

  bool operator==(const PlanKey&) const = default;
};

/// Fold a value into an accumulating key word (FNV-1a step); use to
/// build PlanKey::aux from several parameters.
inline std::uint64_t key_fold(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Bit-exact key word for a double-valued parameter.
std::uint64_t key_of_double(double v);

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = key_fold(h, static_cast<std::uint64_t>(k.d));
    h = key_fold(h, static_cast<std::uint64_t>(k.family));
    h = key_fold(h, static_cast<std::uint64_t>(k.width));
    h = key_fold(h, static_cast<std::uint64_t>(k.horizon));
    h = key_fold(h, static_cast<std::uint64_t>(k.m));
    h = key_fold(h, k.access_tag);
    h = key_fold(h, k.aux);
    return static_cast<std::size_t>(h);
  }
};

class PlanCache {
 public:
  /// Lookup/build accounting, snapshot by stats(). `hits`/`misses`
  /// count lookups; `builds` counts builder invocations that actually
  /// ran (at most one per key unless a build threw and was retried) —
  /// the metrics layer serializes all three per pass.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t builds = 0;
    std::uint64_t lookups() const { return hits + misses; }
    double hit_rate() const {
      return lookups() == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(lookups());
    }
  };

  /// Return the artifact for `key`, building it with `build()` (which
  /// must return a value convertible to std::shared_ptr<const T> or a
  /// plain T) if absent. Concurrent requests for the same key share
  /// one build. A lookup that creates the entry counts as a miss; any
  /// other lookup — including one that waits on an in-flight build —
  /// counts as a hit.
  template <typename T, typename Build>
  std::shared_ptr<const T> get_or_build(const PlanKey& key, Build&& build) {
    std::shared_ptr<Entry> entry;
    bool created = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = map_.find(key);
      if (it == map_.end()) {
        it = map_.emplace(key, std::make_shared<Entry>()).first;
        it->second->type = &typeid(T);
        created = true;
        ++misses_;
      } else {
        ++hits_;
      }
      entry = it->second;
    }
    BSMP_REQUIRE_MSG(*entry->type == typeid(T),
                     "PlanCache key reused with a different artifact type");
    (void)created;
    std::lock_guard<std::mutex> lk(entry->mu);
    // Null also when a previous build threw: retry it here so a failed
    // build never poisons the key.
    if (entry->value == nullptr) {
      builds_.fetch_add(1, std::memory_order_relaxed);
      trace::Span span(trace::Cat::kSweepPoint, "plan-build", key.width,
                       static_cast<std::int64_t>(key.family));
      entry->value = to_shared(build());
    }
    BSMP_ASSERT(entry->value != nullptr);
    return std::static_pointer_cast<const T>(entry->value);
  }

  /// Lookup without building; null when absent. Counts as hit/miss.
  template <typename T>
  std::shared_ptr<const T> lookup(const PlanKey& key) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = map_.find(key);
      if (it == map_.end()) {
        ++misses_;
        return nullptr;
      }
      ++hits_;
      entry = it->second;
    }
    BSMP_REQUIRE_MSG(*entry->type == typeid(T),
                     "PlanCache key reused with a different artifact type");
    std::lock_guard<std::mutex> lk(entry->mu);
    return std::static_pointer_cast<const T>(entry->value);
  }

  Stats stats() const;
  std::size_t size() const;
  void clear();

 private:
  struct Entry {
    std::mutex mu;
    std::shared_ptr<const void> value;
    const std::type_info* type = nullptr;
  };

  template <typename T>
  static std::shared_ptr<const void> to_shared(std::shared_ptr<const T> p) {
    return p;
  }
  template <typename T>
  static std::shared_ptr<const void> to_shared(std::shared_ptr<T> p) {
    return std::shared_ptr<const T>(std::move(p));
  }
  template <typename T>
  static std::shared_ptr<const void> to_shared(T&& value) {
    using V = std::decay_t<T>;
    return std::make_shared<const V>(std::forward<T>(value));
  }

  mutable std::mutex mu_;
  std::unordered_map<PlanKey, std::shared_ptr<Entry>, PlanKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // Incremented under the *entry* mutex, not mu_, hence atomic.
  std::atomic<std::uint64_t> builds_{0};
};

}  // namespace bsmp::engine
