// Minimal command-line argument parser for the bsmp tools: long
// options with values (--n 256 or --n=256), boolean flags (--csv), and
// typed access with defaults. No external dependencies, order-free.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bsmp::core {

class Args {
 public:
  /// Parse argv. Unknown options are collected and reported via
  /// unknown(); positional arguments via positional().
  Args(int argc, const char* const* argv,
       const std::vector<std::string>& known_flags = {});

  bool has(const std::string& name) const;

  std::optional<std::string> get(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_flag(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::vector<std::string>& unknown() const { return unknown_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> flags_;
  std::vector<std::string> positional_;
  std::vector<std::string> unknown_;
};

}  // namespace bsmp::core
