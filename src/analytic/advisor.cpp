#include "analytic/advisor.hpp"

#include <cmath>

#include "analytic/fit.hpp"
#include "core/expect.hpp"

namespace bsmp::analytic {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kNaive: return "naive";
    case Scheme::kDcUniproc: return "dc_uniproc";
    case Scheme::kMultiproc: return "multiproc";
  }
  return "?";
}

Recommendation recommend(int d, double n, double m, double p) {
  BSMP_REQUIRE(d >= 1 && d <= 3);
  Recommendation rec;
  rec.range = classify_range(d, n, m, p);
  double thm1 = slowdown_bound(d, n, m, p);
  double naive = naive_bound(d, n, m, p);
  // Range 4 *is* naive (s* = n/p, one strip per processor) — see the
  // header; rec.s_star stays 0 because there is no separate multiproc
  // schedule to parameterize.
  if (rec.range == Range::k4 || naive <= thm1) {
    rec.scheme = Scheme::kNaive;
    rec.predicted_slowdown = naive;
    return rec;
  }
  rec.predicted_slowdown = thm1;
  if (p <= 1.0) {
    rec.scheme = Scheme::kDcUniproc;
  } else {
    rec.scheme = Scheme::kMultiproc;
    if (d == 1) rec.s_star = s_star(n, m, p);
  }
  return rec;
}

std::array<double, 3> calibration_terms(double n, double m, double p) {
  double s = feasible_s_star(n, m, p);
  ATerms t = A_terms(n, m, p, s);
  double brent = n / p;
  return {brent * t.relocation, brent * t.execution, brent * t.communication};
}

std::array<double, 3> Calibration::terms(double n, double m, double p) {
  return calibration_terms(n, m, p);
}

void Calibration::add_measurement(double n, double m, double p,
                                  double slowdown) {
  BSMP_REQUIRE(slowdown > 0);
  x_.push_back(terms(n, m, p));
  y_.push_back(slowdown);
  fitted_ = false;
}

void Calibration::fit() {
  BSMP_REQUIRE_MSG(x_.size() >= 3, "need at least 3 measurements");
  // Relative-error weighting: scale each row by 1/y.
  std::vector<std::array<double, 3>> xr = x_;
  std::vector<double> yr(y_.size(), 1.0);
  for (std::size_t i = 0; i < y_.size(); ++i)
    for (double& v : xr[i]) v /= y_[i];
  c_ = fit_least_squares<3>(xr, yr);
  fitted_ = true;
}

double Calibration::predict(double n, double m, double p) const {
  BSMP_REQUIRE_MSG(fitted_, "call fit() first");
  auto t = terms(n, m, p);
  return c_[0] * t[0] + c_[1] * t[1] + c_[2] * t[2];
}

double Calibration::training_error() const {
  BSMP_REQUIRE(fitted_);
  double mre = 0;
  for (std::size_t i = 0; i < y_.size(); ++i) {
    double pred = c_[0] * x_[i][0] + c_[1] * x_[i][1] + c_[2] * x_[i][2];
    mre += std::fabs(pred - y_[i]) / y_[i];
  }
  return mre / static_cast<double>(y_.size());
}

void MechanismCalibration::add_measurement(double n, double m, double p,
                                           double slowdown,
                                           double slow_reloc,
                                           double slow_exec,
                                           double slow_comm) {
  BSMP_REQUIRE(slowdown > 0);
  BSMP_REQUIRE(slow_reloc >= 0 && slow_exec >= 0 && slow_comm >= 0);
  Sample s;
  s.t = calibration_terms(n, m, p);
  s.share = {slow_reloc, slow_exec, slow_comm};
  s.y = slowdown;
  // The calibration grid simulates 1-dimensional meshes; the A-terms
  // above are the d=1 forms, so the range split follows suit.
  s.range = classify_range(1, n, m, p);
  s.n = n;
  s.m = m;
  s.p = p;
  samples_.push_back(s);
  y_.push_back(slowdown);
  fitted_ = false;
}

void MechanismCalibration::fit() {
  BSMP_REQUIRE_MSG(!samples_.empty(), "need at least 1 measurement");
  // One-parameter origin least squares of share_k against term_k in
  // ABSOLUTE units, over the sample subset `pred` selects. Unlike the
  // aggregate Calibration (which weights by 1/y to balance relative
  // error across scales), the per-mechanism fit deliberately lets the
  // large-n points dominate: mechanism shares span orders of magnitude
  // across the sweep, and the regime the constants must extrapolate
  // into is exactly the one relative weighting suppresses (measured
  // relocation cost grows faster than the model term at small n, so a
  // relative fit anchors c_reloc to the small-n plateau and
  // underpredicts large problems ~3x). Zero when the mechanism never
  // charged (numerator 0) or the term vanishes on the subset
  // (denominator 0).
  auto fit_subset = [&](auto pred) {
    std::array<double, 3> c{};
    for (int k = 0; k < 3; ++k) {
      double num = 0, den = 0;
      for (const Sample& s : samples_) {
        if (!pred(s)) continue;
        num += s.t[static_cast<std::size_t>(k)] *
               s.share[static_cast<std::size_t>(k)];
        den += s.t[static_cast<std::size_t>(k)] *
               s.t[static_cast<std::size_t>(k)];
      }
      c[static_cast<std::size_t>(k)] = den > 0 ? num / den : 0.0;
    }
    return c;
  };
  pooled_ = fit_subset([](const Sample&) { return true; });
  for (int r = 0; r < 4; ++r) {
    auto in_range = [r](const Sample& s) {
      return static_cast<int>(s.range) == r;
    };
    bool any = false;
    for (const Sample& s : samples_)
      if (in_range(s)) any = true;
    has_range_[static_cast<std::size_t>(r)] = any;
    per_range_[static_cast<std::size_t>(r)] =
        any ? fit_subset(in_range) : pooled_;
  }
  fitted_ = true;
}

const std::array<double, 3>& MechanismCalibration::constants(Range r) const {
  BSMP_REQUIRE_MSG(fitted_, "call fit() first");
  auto i = static_cast<std::size_t>(r);
  return has_range_[i] ? per_range_[i] : pooled_;
}

double MechanismCalibration::predict(double n, double m, double p) const {
  BSMP_REQUIRE_MSG(fitted_, "call fit() first");
  const std::array<double, 3>& c = constants(classify_range(1, n, m, p));
  auto t = calibration_terms(n, m, p);
  return c[0] * t[0] + c[1] * t[1] + c[2] * t[2];
}

double MechanismCalibration::training_error() const {
  BSMP_REQUIRE(fitted_);
  double mre = 0;
  for (const Sample& s : samples_)
    mre += std::fabs(predict(s.n, s.m, s.p) - s.y) / s.y;
  return mre / static_cast<double>(samples_.size());
}

}  // namespace bsmp::analytic
