#include "workload/ram_programs.hpp"

#include "core/expect.hpp"

namespace bsmp::workload {

using hram::Assembler;
using hram::RamOp;
using hram::RamProgram;

// Register conventions (low addresses, near the CPU — unit cost):
//   0..2  loop counters        3..4  pointers
//   5     running sum          6     temporary
//   7..10 derived pointers / row bases

RamProgram ram_sum(std::int64_t base, std::int64_t count) {
  BSMP_REQUIRE(base >= 16 && count >= 0);
  Assembler as;
  as.emit(RamOp::kLoadImm, base).emit(RamOp::kStore, 3);    // ptr = base
  as.emit(RamOp::kLoadImm, count).emit(RamOp::kStore, 0);   // i = count
  as.emit(RamOp::kLoadImm, 0).emit(RamOp::kStore, 5);       // sum = 0
  as.label("loop");
  as.emit(RamOp::kLoad, 0).jump(RamOp::kJz, "done");
  as.emit(RamOp::kLoadInd, 3);                              // acc = M[ptr]
  as.emit(RamOp::kAdd, 5).emit(RamOp::kStore, 5);           // sum += acc
  as.emit(RamOp::kLoad, 3).emit(RamOp::kAddImm, 1).emit(RamOp::kStore, 3);
  as.emit(RamOp::kLoad, 0).emit(RamOp::kSubImm, 1).emit(RamOp::kStore, 0);
  as.jump(RamOp::kJmp, "loop");
  as.label("done");
  as.emit(RamOp::kLoad, 5).emit(RamOp::kHalt);
  return as.assemble();
}

RamProgram ram_reverse(std::int64_t base, std::int64_t count) {
  BSMP_REQUIRE(base >= 16 && count >= 1);
  Assembler as;
  as.emit(RamOp::kLoadImm, base).emit(RamOp::kStore, 3);  // left
  as.emit(RamOp::kLoadImm, base + count - 1).emit(RamOp::kStore, 4);
  as.label("loop");
  as.emit(RamOp::kLoad, 4).emit(RamOp::kSub, 3);  // acc = right - left
  as.jump(RamOp::kJz, "done").jump(RamOp::kJlz, "done");
  as.emit(RamOp::kLoadInd, 3).emit(RamOp::kStore, 6);      // tmp = M[left]
  as.emit(RamOp::kLoadInd, 4).emit(RamOp::kStoreInd, 3);   // M[l] = M[r]
  as.emit(RamOp::kLoad, 6).emit(RamOp::kStoreInd, 4);      // M[r] = tmp
  as.emit(RamOp::kLoad, 3).emit(RamOp::kAddImm, 1).emit(RamOp::kStore, 3);
  as.emit(RamOp::kLoad, 4).emit(RamOp::kSubImm, 1).emit(RamOp::kStore, 4);
  as.jump(RamOp::kJmp, "loop");
  as.label("done");
  as.emit(RamOp::kHalt);
  return as.assemble();
}

RamProgram ram_dot(std::int64_t a, std::int64_t b, std::int64_t count) {
  BSMP_REQUIRE(a >= 16 && b >= 16 && count >= 0);
  Assembler as;
  as.emit(RamOp::kLoadImm, a).emit(RamOp::kStore, 3);
  as.emit(RamOp::kLoadImm, b).emit(RamOp::kStore, 4);
  as.emit(RamOp::kLoadImm, count).emit(RamOp::kStore, 0);
  as.emit(RamOp::kLoadImm, 0).emit(RamOp::kStore, 5);
  as.label("loop");
  as.emit(RamOp::kLoad, 0).jump(RamOp::kJz, "done");
  as.emit(RamOp::kLoadInd, 3).emit(RamOp::kStore, 6);  // tmp = M[pa]
  as.emit(RamOp::kLoadInd, 4).emit(RamOp::kMul, 6);    // acc = M[pb]*tmp
  as.emit(RamOp::kAdd, 5).emit(RamOp::kStore, 5);
  as.emit(RamOp::kLoad, 3).emit(RamOp::kAddImm, 1).emit(RamOp::kStore, 3);
  as.emit(RamOp::kLoad, 4).emit(RamOp::kAddImm, 1).emit(RamOp::kStore, 4);
  as.emit(RamOp::kLoad, 0).emit(RamOp::kSubImm, 1).emit(RamOp::kStore, 0);
  as.jump(RamOp::kJmp, "loop");
  as.label("done");
  as.emit(RamOp::kLoad, 5).emit(RamOp::kHalt);
  return as.assemble();
}

RamProgram ram_matmul(std::int64_t a, std::int64_t b, std::int64_t c,
                      std::int64_t side) {
  BSMP_REQUIRE(a >= 16 && b >= 16 && c >= 16 && side >= 1);
  Assembler as;
  as.emit(RamOp::kLoadImm, side).emit(RamOp::kStore, 0);  // i_rem
  as.emit(RamOp::kLoadImm, a).emit(RamOp::kStore, 8);     // arow
  as.emit(RamOp::kLoadImm, c).emit(RamOp::kStore, 9);     // crow
  as.label("iloop");
  as.emit(RamOp::kLoad, 0).jump(RamOp::kJz, "done");
  as.emit(RamOp::kLoadImm, side).emit(RamOp::kStore, 1);  // j_rem
  as.emit(RamOp::kLoadImm, b).emit(RamOp::kStore, 10);    // bcol
  as.emit(RamOp::kLoad, 9).emit(RamOp::kStore, 7);        // pcell = crow
  as.label("jloop");
  as.emit(RamOp::kLoad, 1).jump(RamOp::kJz, "iend");
  as.emit(RamOp::kLoadImm, 0).emit(RamOp::kStore, 5);     // sum = 0
  as.emit(RamOp::kLoadImm, side).emit(RamOp::kStore, 2);  // k_rem
  as.emit(RamOp::kLoad, 8).emit(RamOp::kStore, 3);        // pa = arow
  as.emit(RamOp::kLoad, 10).emit(RamOp::kStore, 4);       // pb = bcol
  as.label("kloop");
  as.emit(RamOp::kLoad, 2).jump(RamOp::kJz, "kend");
  as.emit(RamOp::kLoadInd, 3).emit(RamOp::kStore, 6);     // tmp = A[i][k]
  as.emit(RamOp::kLoadInd, 4).emit(RamOp::kMul, 6);       // acc=B[k][j]*tmp
  as.emit(RamOp::kAdd, 5).emit(RamOp::kStore, 5);
  as.emit(RamOp::kLoad, 3).emit(RamOp::kAddImm, 1).emit(RamOp::kStore, 3);
  as.emit(RamOp::kLoad, 4).emit(RamOp::kAddImm, side).emit(RamOp::kStore, 4);
  as.emit(RamOp::kLoad, 2).emit(RamOp::kSubImm, 1).emit(RamOp::kStore, 2);
  as.jump(RamOp::kJmp, "kloop");
  as.label("kend");
  as.emit(RamOp::kLoad, 5).emit(RamOp::kStoreInd, 7);     // C cell = sum
  as.emit(RamOp::kLoad, 7).emit(RamOp::kAddImm, 1).emit(RamOp::kStore, 7);
  as.emit(RamOp::kLoad, 10).emit(RamOp::kAddImm, 1).emit(RamOp::kStore, 10);
  as.emit(RamOp::kLoad, 1).emit(RamOp::kSubImm, 1).emit(RamOp::kStore, 1);
  as.jump(RamOp::kJmp, "jloop");
  as.label("iend");
  as.emit(RamOp::kLoad, 8).emit(RamOp::kAddImm, side).emit(RamOp::kStore, 8);
  as.emit(RamOp::kLoad, 9).emit(RamOp::kAddImm, side).emit(RamOp::kStore, 9);
  as.emit(RamOp::kLoad, 0).emit(RamOp::kSubImm, 1).emit(RamOp::kStore, 0);
  as.jump(RamOp::kJmp, "iloop");
  as.label("done");
  as.emit(RamOp::kHalt);
  return as.assemble();
}

}  // namespace bsmp::workload
