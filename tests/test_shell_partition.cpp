// The generic shell partition (Figures 1 and 4 for any d): disjoint
// cover of V, topological order, and piece counts 2K+1.
#include <gtest/gtest.h>

#include "dag/explicit_dag.hpp"
#include "geom/figures.hpp"

using namespace bsmp;
using geom::Region;
using geom::Stencil;

namespace {

template <int D>
void check_shell(const Stencil<D>& st, const Region<D>& center,
                 std::size_t expect_pieces) {
  auto parts = geom::shell_partition<D>(&st, center);
  EXPECT_LE(parts.size(), expect_pieces);  // empty pieces are dropped
  dag::ExplicitDag<D> g(st);
  dag::PointSet<D> v;
  g.for_each_vertex([&](const geom::Point<D>& p) { v.insert(p); });
  std::vector<dag::PointSet<D>> psets;
  std::size_t covered = 0;
  for (const auto& part : parts) {
    dag::PointSet<D> s;
    part.for_each([&](const geom::Point<D>& p) { s.insert(p); });
    covered += s.size();
    psets.push_back(std::move(s));
  }
  EXPECT_EQ(covered, v.size());
  EXPECT_TRUE(g.is_topological_partition(v, psets));
}

}  // namespace

TEST(ShellPartition, D1MatchesFigureOne) {
  Stencil<1> st{{12}, 12, 1};
  Region<1> center(&st, {6, -6}, {18, 6});  // the inscribed D(n)
  check_shell<1>(st, center, 5);
  auto parts = geom::shell_partition<1>(&st, center);
  EXPECT_EQ(parts.size(), 5u);
  // The central piece (index K=2) is the full diamond.
  EXPECT_EQ(parts[2].count(), 12 * 12 / 2);
}

TEST(ShellPartition, D2GivesNinePieces) {
  Stencil<2> st{{8, 8}, 8, 1};
  Region<2> center = geom::make_octahedron(&st, 4, -4, 4, -4, 8);
  ASSERT_FALSE(center.empty());
  check_shell<2>(st, center, 9);
}

TEST(ShellPartition, D3GivesThirteenPieces) {
  Stencil<3> st{{4, 4, 4}, 4, 1};
  Region<3> center(&st, {2, -2, 2, -2, 2, -2}, {6, 2, 6, 2, 6, 2});
  ASSERT_FALSE(center.empty());
  check_shell<3>(st, center, 13);
}

TEST(ShellPartition, WorksWithMemoryDepth) {
  Stencil<1> st{{10}, 10, 3};
  Region<1> center(&st, {5, -5}, {15, 5});
  check_shell<1>(st, center, 5);
}

TEST(ShellPartition, DegenerateCenterCoversV) {
  // A center hugging one corner: shell pieces absorb the rest.
  Stencil<1> st{{6}, 6, 1};
  Region<1> center(&st, {0, -5}, {2, -3});
  check_shell<1>(st, center, 5);
}

TEST(ShellPartition, RejectsCenterOutsideV) {
  Stencil<1> st{{6}, 6, 1};
  Region<1> bad(&st, {-5, -5}, {2, 2});
  EXPECT_THROW(geom::shell_partition<1>(&st, bad),
               bsmp::precondition_error);
}
