#include "geom/render.hpp"

#include "core/expect.hpp"

namespace bsmp::geom {

namespace {

char glyph(std::size_t i) {
  if (i < 9) return static_cast<char>('1' + i);
  if (i < 9 + 26) return static_cast<char>('a' + (i - 9));
  return '?';
}

}  // namespace

std::string render_partition_1d(const Stencil<1>& st,
                                const std::vector<Region<1>>& pieces) {
  const int64_t n = st.extent[0];
  const int64_t T = st.horizon;
  std::vector<std::string> rows(static_cast<std::size_t>(T),
                                std::string(static_cast<std::size_t>(n),
                                            '.'));
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    pieces[i].for_each([&](const Point<1>& p) {
      char& c = rows[p.t][p.x[0]];
      c = (c == '.') ? glyph(i) : '#';
    });
  }
  std::string out;
  for (int64_t t = T - 1; t >= 0; --t) {
    out += rows[static_cast<std::size_t>(t)];
    out += '\n';
  }
  out += std::string(static_cast<std::size_t>(n), '-');
  out += "  (x ->, t ^)\n";
  return out;
}

std::string render_region_1d(const Region<1>& region) {
  return render_partition_1d(region.stencil(), {region});
}

std::string render_partition_2d_slice(const Stencil<2>& st,
                                      const std::vector<Region<2>>& pieces,
                                      int64_t t) {
  BSMP_REQUIRE(t >= 0 && t < st.horizon);
  const int64_t nx = st.extent[0];
  const int64_t ny = st.extent[1];
  std::vector<std::string> rows(static_cast<std::size_t>(ny),
                                std::string(static_cast<std::size_t>(nx),
                                            '.'));
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    pieces[i].for_each_at_time(t, [&](const Point<2>& p) {
      char& c = rows[p.x[1]][p.x[0]];
      c = (c == '.') ? glyph(i) : '#';
    });
  }
  std::string out = "t = " + std::to_string(t) + ":\n";
  for (int64_t y = ny - 1; y >= 0; --y) {
    out += rows[static_cast<std::size_t>(y)];
    out += '\n';
  }
  return out;
}

}  // namespace bsmp::geom
