// Minimal fixed-width table printer used by the bench harness to emit
// the paper-reproduction tables (parameters, measured cost, closed-form
// prediction, ratio) in a grep-friendly layout.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace bsmp::core {

/// A cell is either text, an integer, or a real (printed with fixed
/// significant digits).
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  /// `title` is printed above the table; `columns` are the header names.
  Table(std::string title, std::vector<std::string> columns);

  /// Append one row; must have exactly as many cells as columns.
  void add_row(std::vector<Cell> row);

  std::size_t num_rows() const { return rows_.size(); }

  /// Render with aligned columns to `os`.
  void print(std::ostream& os) const;

  /// Render as CSV (header row + data rows); commas in cells are
  /// replaced by semicolons to keep the format line-per-row.
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Format a double with `digits` significant digits (used by Table and
/// ad-hoc reporting).
std::string format_real(double v, int digits = 5);

}  // namespace bsmp::core
