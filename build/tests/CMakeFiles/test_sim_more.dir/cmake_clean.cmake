file(REMOVE_RECURSE
  "CMakeFiles/test_sim_more.dir/test_sim_more.cpp.o"
  "CMakeFiles/test_sim_more.dir/test_sim_more.cpp.o.d"
  "test_sim_more"
  "test_sim_more.pdb"
  "test_sim_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
