// E1 — Introduction example: superlinear mesh speedup for matrix
// multiplication. Regenerates the paper's motivating numbers:
//   mesh M2(n,n,1):       Θ(sqrt(n))
//   uniprocessor, naive:  Θ(n^2)          -> speedup Θ(n^(3/2))
//   uniprocessor, AACS87: Θ(n^(3/2) log n) -> speedup Θ(n log n)
// Tables come from tables::e1_tables via the engine harness; the
// kernels below time the three matmul variants in isolation.
#include "bench_common.hpp"
#include "core/rng.hpp"
#include "workload/matmul.hpp"

using namespace bsmp;

namespace {

std::vector<hram::Word> rnd(std::int64_t side, std::uint64_t seed) {
  core::SplitMix64 rng(seed);
  std::vector<hram::Word> m(static_cast<std::size_t>(side * side));
  for (auto& v : m) v = rng.next();
  return m;
}

void BM_mesh(benchmark::State& state) {
  std::int64_t side = state.range(0);
  auto a = rnd(side, 1), b = rnd(side, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::matmul_mesh_systolic(side, a, b));
}
BENCHMARK(BM_mesh)->Arg(16)->Arg(32)->Arg(64);

void BM_hram_naive(benchmark::State& state) {
  std::int64_t side = state.range(0);
  auto a = rnd(side, 1), b = rnd(side, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::matmul_hram_naive(side, a, b));
}
BENCHMARK(BM_hram_naive)->Arg(16)->Arg(32);

void BM_hram_blocked(benchmark::State& state) {
  std::int64_t side = state.range(0);
  auto a = rnd(side, 1), b = rnd(side, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::matmul_hram_blocked(side, a, b));
}
BENCHMARK(BM_hram_blocked)->Arg(16)->Arg(32);

}  // namespace

BSMP_BENCH_MAIN("e1")
