
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/advisor.cpp" "src/analytic/CMakeFiles/bsmp_analytic.dir/advisor.cpp.o" "gcc" "src/analytic/CMakeFiles/bsmp_analytic.dir/advisor.cpp.o.d"
  "/root/repo/src/analytic/fit.cpp" "src/analytic/CMakeFiles/bsmp_analytic.dir/fit.cpp.o" "gcc" "src/analytic/CMakeFiles/bsmp_analytic.dir/fit.cpp.o.d"
  "/root/repo/src/analytic/tradeoff.cpp" "src/analytic/CMakeFiles/bsmp_analytic.dir/tradeoff.cpp.o" "gcc" "src/analytic/CMakeFiles/bsmp_analytic.dir/tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsmp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
