// E6 — ablation of the strip width s (Section 4.2's optimization).
//
// The paper minimizes A(s) = (m/p) loḡ(n/ps) + min(s, m loḡ(s/m)) +
// n/(ps), a sum of three mechanisms whose big-O constants it drops. A
// real implementation carries a constant per mechanism (our executor's
// τ0 alone is ~10^2, consistent with the paper's own σ0 ≈ 11 from
// Proposition 3), so the *absolute* optimum shifts. The reproducible
// claim is structural: the measured slowdown is a non-negative linear
// combination of exactly those three terms. We fit the three
// coefficients by least squares across the s sweep, report R^2, and
// compare the argmin of the fitted curve with the measured argmin.
#include "bench_common.hpp"

#include "analytic/fit.hpp"

using namespace bsmp;
using bsmp::bench::spec;

namespace {

void emit() {
  std::int64_t n = 256, p = 4;
  for (std::int64_t m : {1, 8, 64}) {
    auto range = analytic::classify_range(1, n, m, p);
    core::Table t("E6: A(s) ablation — n=256, p=4, m=" + std::to_string(m) +
                      "  [" + analytic::to_string(range) + "]",
                  {"s", "A(s) analytic", "Tp/Tn measured", "fitted",
                   "note"});
    double star = analytic::s_star((double)n, (double)m, (double)p);
    auto g = workload::make_mix_guest<1>({n}, n, m, 9);
    auto ref = sim::reference_run<1>(g);

    std::vector<std::int64_t> svals;
    std::vector<std::array<double, 3>> xs;
    std::vector<double> ys;
    for (std::int64_t s = 1; s * p <= n; s *= 2) {
      sim::MultiprocConfig cfg;
      cfg.s = s;
      auto res = sim::simulate_multiproc<1>(g, spec(1, n, p, m), cfg);
      bench::require_equivalent<1>(res, ref, "sstar ablation");
      auto terms = analytic::A_terms((double)n, (double)m, (double)p,
                                     (double)s);
      svals.push_back(s);
      xs.push_back({terms.relocation, terms.execution, terms.communication});
      ys.push_back(res.slowdown() / ((double)n / (double)p));  // measured A
    }
    // Relative least squares (rows scaled by 1/y) so every point on
    // the sweep carries equal weight regardless of magnitude.
    std::vector<std::array<double, 3>> xs_rel = xs;
    std::vector<double> ys_rel(ys.size(), 1.0);
    for (std::size_t i = 0; i < ys.size(); ++i)
      for (double& v : xs_rel[i]) v /= ys[i];
    auto c = analytic::fit_least_squares<3>(xs_rel, ys_rel);
    double mre = 0;  // mean relative error of the fitted curve
    for (std::size_t i = 0; i < ys.size(); ++i) {
      double pred = c[0] * xs[i][0] + c[1] * xs[i][1] + c[2] * xs[i][2];
      mre += std::fabs(pred - ys[i]) / ys[i];
    }
    mre /= static_cast<double>(ys.size());

    std::size_t argmin_meas = 0, argmin_fit = 0;
    for (std::size_t i = 1; i < ys.size(); ++i) {
      if (ys[i] < ys[argmin_meas]) argmin_meas = i;
      double fi = c[0] * xs[i][0] + c[1] * xs[i][1] + c[2] * xs[i][2];
      double fb = c[0] * xs[argmin_fit][0] + c[1] * xs[argmin_fit][1] +
                  c[2] * xs[argmin_fit][2];
      if (fi < fb) argmin_fit = i;
    }
    for (std::size_t i = 0; i < ys.size(); ++i) {
      double s = (double)svals[i];
      double fit = c[0] * xs[i][0] + c[1] * xs[i][1] + c[2] * xs[i][2];
      std::string note;
      if (s <= star && star < 2 * s) note += "paper s*; ";
      if (i == argmin_meas) note += "measured min; ";
      if (i == argmin_fit) note += "fit min";
      t.add_row({(long long)svals[i],
                 analytic::A_of_s((double)n, (double)m, (double)p, s),
                 ys[i] * ((double)n / (double)p),
                 fit * ((double)n / (double)p), note});
    }
    t.print(std::cout);
    std::cout << "# mechanism constants (fit): relocation=" << c[0]
              << " execution=" << c[1] << " communication=" << c[2]
              << "  mean-relative-error=" << mre << "\n\n";
  }
  std::cout << "# Expected: small relative error — the measured curve is the\n"
               "# three-mechanism combination the paper optimizes; with the\n"
               "# fitted (implementation) constants the optimum shifts to\n"
               "# smaller s than the constant-free s*, as Section 4.2's\n"
               "# analysis predicts it would for any concrete machine.\n\n";
}

void BM_sweep_s(benchmark::State& state) {
  std::int64_t s = state.range(0);
  auto g = workload::make_mix_guest<1>({128}, 128, 8, 9);
  sim::MultiprocConfig cfg;
  cfg.s = s;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_multiproc<1>(g, spec(1, 128, 4, 8), cfg));
}
BENCHMARK(BM_sweep_s)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

BSMP_BENCH_MAIN(emit)
