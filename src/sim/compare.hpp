// Cross-scheme comparison harness: run every applicable simulation
// scheme on one guest/host pair, verify that all of them reproduce the
// guest's outputs bit-for-bit, and tabulate slowdowns against the
// closed-form bounds. The backbone of `bsmp_sim --compare` and of the
// agreement tests.
#pragma once

#include <string>
#include <vector>

#include "analytic/tradeoff.hpp"
#include "core/expect.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"

namespace bsmp::sim {

template <int D>
struct SchemeRun {
  std::string name;
  core::Cost time = 0;
  double slowdown = 0;
  double utilization = 1.0;
  bool matches_guest = false;
};

template <int D>
struct Comparison {
  std::vector<SchemeRun<D>> runs;
  double bound = 0;        ///< Theorem-1 slowdown bound
  double naive_bound = 0;  ///< Proposition-1 slowdown bound
  bool all_match = true;
};

/// Run reference + naive + brent + pipelined + (dc if p==1, multiproc
/// if p>1) and compare. `s` forwards to the multiprocessor scheme
/// (0 = default).
template <int D>
Comparison<D> compare_schemes(const sep::Guest<D>& guest,
                              const machine::MachineSpec& host,
                              std::int64_t s = 0) {
  Comparison<D> cmp;
  auto ref = reference_run<D>(guest);
  double n = static_cast<double>(host.n);
  double m = static_cast<double>(guest.stencil.m);
  double p = static_cast<double>(host.p);
  cmp.bound = analytic::slowdown_bound(host.d <= 2 ? host.d : 2, n, m, p);
  cmp.naive_bound = analytic::naive_bound(host.d, n, m, p);

  auto push = [&](std::string name, const SimResult<D>& res) {
    SchemeRun<D> run;
    run.name = std::move(name);
    run.time = res.time;
    run.slowdown = res.slowdown();
    run.utilization = res.utilization;
    run.matches_guest = same_values<D>(res.final_values, ref.final_values);
    cmp.all_match = cmp.all_match && run.matches_guest;
    cmp.runs.push_back(std::move(run));
  };

  push("guest (reference)", ref);
  push("naive (Prop. 1)", simulate_naive<D>(guest, host));
  {
    NaiveConfig brent;
    brent.instantaneous = true;
    push("instantaneous (Brent)", simulate_naive<D>(guest, host, brent));
  }
  {
    NaiveConfig piped;
    piped.pipelined = true;
    push("pipelined memory (Sec. 6)",
         simulate_naive<D>(guest, host, piped));
  }
  if (host.p == 1) {
    push("D&C separator (Thms 2/3/5)", simulate_dc_uniproc<D>(guest, host));
  } else {
    MultiprocConfig cfg;
    cfg.s = s;
    push("two-regime (Thms 4 / 1)", simulate_multiproc<D>(guest, host, cfg));
  }
  return cmp;
}

}  // namespace bsmp::sim
