// Runner: replays a Schedule against a guest program, computing real
// values and statically validating the plan:
//   * every dag vertex is executed by exactly one leaf op;
//   * leaf ops appear in an order where every operand is available;
//   * the executed vertex count equals |V|.
// A schedule that passes the runner is a correct simulation plan for
// *any* guest on this stencil (the dag is workload-independent).
#pragma once

#include "core/expect.hpp"
#include "sched/schedule.hpp"
#include "sep/guest.hpp"

namespace bsmp::sched {

template <int D>
struct RunResult {
  sep::ValueMap<D> values;  ///< every computed vertex value
  std::int64_t vertices = 0;
};

/// Works for both Schedule (uniprocessor) and ParallelSchedule: the
/// latter's program order is a valid sequentialization of its stages.
template <int D, class Sched = Schedule<D>>
RunResult<D> run_schedule(const sep::Guest<D>& guest, const Sched& sched) {
  guest.validate();
  const geom::Stencil<D>& st = guest.stencil;
  RunResult<D> res;

  auto lookup = [&](const geom::Point<D>& q) -> sep::Word {
    auto it = res.values.find(q);
    BSMP_ASSERT_MSG(it != res.values.end(),
                    "schedule order invalid: operand (t=" << q.t
                                                          << ") not ready");
    return it->second;
  };

  for (const auto& op : sched.ops()) {
    if (op.kind != OpKind::kLeaf) continue;
    geom::Region<D> leaf(&st, op.leaf_lo, op.leaf_hi);
    leaf.for_each([&](const geom::Point<D>& p) {
      BSMP_ASSERT_MSG(!res.values.contains(p),
                      "schedule executes a vertex twice (t=" << p.t << ")");
      sep::Word value;
      if (p.t == 0) {
        value = guest.input(p.x, 0);
      } else {
        sep::Word self_prev;
        if (p.t >= st.m) {
          geom::Point<D> q = p;
          q.t = p.t - st.m;
          self_prev = lookup(q);
        } else {
          self_prev = guest.input(p.x, p.t % st.m);
        }
        sep::NeighborWords<D> nbrs{};
        for (int i = 0; i < D; ++i) {
          for (int sgn = 0; sgn < 2; ++sgn) {
            geom::Point<D> q = p;
            q.x[i] += (sgn == 0 ? -1 : 1);
            q.t = p.t - 1;
            if (st.in_space(q.x)) nbrs[2 * i + sgn] = lookup(q);
          }
        }
        value = guest.rule(p, self_prev, nbrs);
      }
      res.values.emplace(p, value);
      ++res.vertices;
    });
  }

  BSMP_ASSERT_MSG(res.vertices == st.num_nodes() * st.horizon,
                  "schedule covers " << res.vertices << " of "
                                     << st.num_nodes() * st.horizon
                                     << " vertices");
  return res;
}

}  // namespace bsmp::sched
