#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "dag/explicit_dag.hpp"
#include "geom/figures.hpp"
#include "geom/region.hpp"
#include "geom/tiling.hpp"

using namespace bsmp;
using geom::Point;
using geom::Region;
using geom::Stencil;

namespace {

Stencil<1> stencil1(int64_t n, int64_t T, int64_t m = 1) {
  Stencil<1> st;
  st.extent = {n};
  st.horizon = T;
  st.m = m;
  return st;
}

Stencil<2> stencil2(int64_t side, int64_t T, int64_t m = 1) {
  Stencil<2> st;
  st.extent = {side, side};
  st.horizon = T;
  st.m = m;
  return st;
}

/// Brute-force point list of a region by scanning the full vertex set.
template <int D>
std::vector<Point<D>> brute_points(const Region<D>& r) {
  dag::ExplicitDag<D> g(r.stencil());
  std::vector<Point<D>> out;
  g.for_each_vertex([&](const Point<D>& p) {
    if (r.contains(p)) out.push_back(p);
  });
  return out;
}

template <int D>
std::set<std::tuple<int64_t, int64_t, int64_t>> as_set(
    const std::vector<Point<D>>& v) {
  std::set<std::tuple<int64_t, int64_t, int64_t>> s;
  for (const auto& p : v) {
    if constexpr (D == 1)
      s.insert({p.x[0], 0, p.t});
    else
      s.insert({p.x[0], p.x[1], p.t});
  }
  return s;
}

}  // namespace

TEST(Region1, CountMatchesBruteForce) {
  Stencil<1> st = stencil1(8, 8);
  // The full diamond D(8) anchored at the origin region of V.
  Region<1> d(&st, {2, -3}, {10, 5});
  auto pts = brute_points(d);
  EXPECT_EQ(d.count(), static_cast<int64_t>(pts.size()));
  EXPECT_GT(d.count(), 0);
  // Enumeration agrees with membership scan.
  EXPECT_EQ(as_set<1>(d.points()), as_set<1>(pts));
}

TEST(Region1, DiamondCardinalityIsRoughlyHalfSquare) {
  // An unclipped diamond D(r) has ~r^2/2 lattice points.
  Stencil<1> st = stencil1(64, 64);
  Region<1> d = geom::make_diamond(&st, 20, -20, 16);
  EXPECT_NEAR(static_cast<double>(d.count()), 16.0 * 16.0 / 2.0, 16.0 + 2);
}

TEST(Region1, ForEachVisitsInTopologicalOrder) {
  Stencil<1> st = stencil1(8, 8);
  Region<1> d(&st, {0, -7}, {15, 8});
  int64_t last_t = -1;
  d.for_each([&](const Point<1>& p) {
    EXPECT_GE(p.t, last_t);
    last_t = p.t;
  });
  EXPECT_GE(last_t, 0);
}

TEST(Region1, EmptyAndFirstPoint) {
  Stencil<1> st = stencil1(8, 8);
  Region<1> empty(&st, {100, 100}, {104, 104});  // beyond the horizon
  EXPECT_TRUE(empty.empty());
  Region<1> one(&st, {3, -3}, {4, -2});  // u=3, w=-3 -> t=0, x=3
  ASSERT_FALSE(one.empty());
  auto p = one.first_point();
  EXPECT_EQ(p->t, 0);
  EXPECT_EQ(p->x[0], 3);
  EXPECT_EQ(one.count(), 1);
}

TEST(Region1, PreboundaryMatchesBruteForce) {
  for (int64_t m : {1, 2, 3}) {
    Stencil<1> st = stencil1(10, 12, m);
    dag::ExplicitDag<1> g(st);
    Region<1> d(&st, {4, -4}, {12, 4});
    dag::PointSet<1> u;
    for (const auto& p : d.points()) u.insert(p);
    auto brute = g.preboundary(u);
    auto fast = d.preboundary();
    dag::PointSet<1> fast_set(fast.begin(), fast.end());
    EXPECT_EQ(fast_set.size(), fast.size()) << "duplicates in preboundary";
    EXPECT_EQ(fast_set, brute) << "m=" << m;
  }
}

TEST(Region1, OutsetMatchesBruteForce) {
  for (int64_t m : {1, 2, 3}) {
    Stencil<1> st = stencil1(10, 12, m);
    dag::ExplicitDag<1> g(st);
    Region<1> d(&st, {4, -4}, {12, 4});
    dag::PointSet<1> u;
    for (const auto& p : d.points()) u.insert(p);
    // Brute force: q in U with a successor *position* outside U.
    dag::PointSet<1> brute;
    for (const auto& p : d.points()) {
      std::array<Point<1>, geom::kMono<1> + 1> buf;
      int k = st.succ_positions(p, buf);
      for (int i = 0; i < k; ++i)
        if (!d.contains(buf[i])) {
          brute.insert(p);
          break;
        }
    }
    auto fast = d.outset();
    dag::PointSet<1> fast_set(fast.begin(), fast.end());
    EXPECT_EQ(fast_set.size(), fast.size()) << "duplicates in outset";
    EXPECT_EQ(fast_set, brute) << "m=" << m;
  }
}

TEST(Region2, CountAndMembershipMatchBruteForce) {
  Stencil<2> st = stencil2(6, 6);
  Region<2> r(&st, {1, -2, 0, -3}, {7, 4, 6, 3});
  auto pts = brute_points(r);
  EXPECT_EQ(r.count(), static_cast<int64_t>(pts.size()));
  EXPECT_EQ(as_set<2>(r.points()), as_set<2>(pts));
}

TEST(Region2, PreboundaryAndOutsetMatchBruteForce) {
  for (int64_t m : {1, 2}) {
    Stencil<2> st = stencil2(6, 8, m);
    dag::ExplicitDag<2> g(st);
    geom::Region<2> r = geom::make_octahedron(&st, 2, -2, 1, -1, 6);
    ASSERT_FALSE(r.empty());
    dag::PointSet<2> u;
    for (const auto& p : r.points()) u.insert(p);

    auto brute_pre = g.preboundary(u);
    auto fast_pre = r.preboundary();
    dag::PointSet<2> fast_pre_set(fast_pre.begin(), fast_pre.end());
    EXPECT_EQ(fast_pre_set.size(), fast_pre.size());
    EXPECT_EQ(fast_pre_set, brute_pre) << "m=" << m;

    dag::PointSet<2> brute_out;
    for (const auto& p : r.points()) {
      std::array<Point<2>, geom::kMono<2> + 1> buf;
      int k = st.succ_positions(p, buf);
      for (int i = 0; i < k; ++i)
        if (!r.contains(buf[i])) {
          brute_out.insert(p);
          break;
        }
    }
    auto fast_out = r.outset();
    dag::PointSet<2> fast_out_set(fast_out.begin(), fast_out.end());
    EXPECT_EQ(fast_out_set.size(), fast_out.size());
    EXPECT_EQ(fast_out_set, brute_out) << "m=" << m;
  }
}

TEST(Region1, PreboundaryScalesAsSeparator) {
  // |Γin(D(r))| = O(sqrt(|D(r)|)): the (2*sqrt(2)x^(1/2), 1/4)
  // separator of Theorem 2.
  Stencil<1> st = stencil1(512, 512);
  for (int64_t r = 8; r <= 128; r *= 2) {
    Region<1> d = geom::make_diamond(&st, 256, -r / 2, r);
    ASSERT_FALSE(d.empty());
    double gin = static_cast<double>(d.preboundary().size());
    double bound = 2.0 * std::sqrt(2.0 * static_cast<double>(d.count())) + 8;
    EXPECT_LE(gin, bound) << "r=" << r;
  }
}

TEST(Region2, PreboundaryScalesAsSeparator) {
  // |Γin(P)| = O(|P|^(2/3)): the Section-5 separator.
  Stencil<2> st = stencil2(64, 64);
  for (int64_t r = 4; r <= 32; r *= 2) {
    Region<2> p = geom::make_octahedron(&st, 32, -16, 32, -16, r);
    ASSERT_FALSE(p.empty());
    double gin = static_cast<double>(p.preboundary().size());
    // Paper constant: 2*3^(1/3) ~ 2.9; lattice shells add lower-order
    // terms, so allow 6x.
    double bound =
        6.0 * std::pow(static_cast<double>(p.count()), 2.0 / 3.0) + 16;
    EXPECT_LE(gin, bound) << "r=" << r;
  }
}

TEST(TileGrid1, TilesCoverVExactlyOnce) {
  for (int64_t w : {3, 5, 8}) {
    Stencil<1> st = stencil1(8, 8);
    geom::TileGrid<1> grid(&st, w);
    dag::ExplicitDag<1> g(st);
    dag::PointSet<1> seen;
    for (const auto& wave : grid.wavefronts())
      for (const auto& tile : wave)
        for (const auto& p : tile.points())
          EXPECT_TRUE(seen.insert(p).second) << "tile overlap, w=" << w;
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(8 * 8)) << "w=" << w;
  }
}

TEST(TileGrid2, TilesCoverVExactlyOnce) {
  Stencil<2> st = stencil2(4, 4);
  geom::TileGrid<2> grid(&st, 3);
  dag::PointSet<2> seen;
  for (const auto& wave : grid.wavefronts())
    for (const auto& tile : wave)
      for (const auto& p : tile.points())
        EXPECT_TRUE(seen.insert(p).second);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(4 * 4 * 4));
}

TEST(TileGrid1, WavefrontsRespectDependencies) {
  // Every predecessor of a wavefront-k tile point lies in wavefront <= k
  // (same-wavefront tiles are mutually independent so < k or same tile).
  Stencil<1> st = stencil1(10, 10);
  geom::TileGrid<1> grid(&st, 4);
  auto waves = grid.wavefronts();
  std::unordered_map<geom::Point<1>, int, geom::PointHash<1>> wave_of;
  std::unordered_map<geom::Point<1>, int, geom::PointHash<1>> tile_of;
  int tile_id = 0;
  for (std::size_t k = 0; k < waves.size(); ++k)
    for (const auto& tile : waves[k]) {
      for (const auto& p : tile.points()) {
        wave_of[p] = static_cast<int>(k);
        tile_of[p] = tile_id;
      }
      ++tile_id;
    }
  dag::ExplicitDag<1> g(st);
  g.for_each_vertex([&](const geom::Point<1>& p) {
    for (const auto& q : g.preds(p)) {
      if (tile_of[q] == tile_of[p]) continue;
      EXPECT_LT(wave_of[q], wave_of[p]);
    }
  });
}
