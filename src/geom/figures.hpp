// Constructors for the specific domains and partitions drawn in the
// paper's Figures 1, 3 and 4, used by the E9 geometry-validation
// experiment and the separator tests.
#pragma once

#include <string>
#include <vector>

#include "geom/region.hpp"

namespace bsmp::geom {

/// A diamond D(r) of Section 4: x-extent and t-extent r, |D(r)| ~ r^2/2,
/// centered so that its lowest vertex sits at (x0, t0). Constructed as
/// the monotone-coordinate box [u0, u0+r) x [w0, w0+r).
Region<1> make_diamond(const Stencil<1>* st, int64_t u0, int64_t w0,
                       int64_t r);

/// An octahedron P of Section 5: all four monotone intervals of equal
/// length r with fully overlapping sums (box [u0,u0+r) x [a0,a0+r) x
/// [v0,v0+r) x [b0,b0+r) with u0+a0 == v0+b0).
Region<2> make_octahedron(const Stencil<2>* st, int64_t u0, int64_t a0,
                          int64_t v0, int64_t b0, int64_t r);

/// A tetrahedron W of Section 5: equal-length intervals whose (u+a) and
/// (v+b) sum ranges overlap in exactly half their length.
Region<2> make_tetrahedron(const Stencil<2>* st, int64_t u0, int64_t a0,
                           int64_t v0, int64_t b0, int64_t r);

/// Classification of a Region<2> box by the offset between its (u+a)
/// and (v+b) sum ranges: offset 0 is an octahedron (P-type), offset of
/// half the sum-range length is a tetrahedron (W-type).
enum class DomainClass { kOctahedron, kTetrahedron, kOther };
DomainClass classify_d2(const Region<2>& r);
std::string to_string(DomainClass c);

/// Figure 1: the ordered partition (U1,...,U5) of the full space-time
/// rectangle V = [0,n) x [0,n) (n nodes, n steps, m=1) into the central
/// diamond D(n) and four truncated diamonds, in topological order.
/// The stencil must have extent {n} and horizon n.
std::vector<Region<1>> fig1_partition(const Stencil<1>* st);

/// The general construction behind Figures 1 and 4: partition the full
/// volume V into a central domain plus 2K truncated shell pieces (one
/// per monotone half-axis), returned in topological order
/// (LOW_0..LOW_{K-1}, center, HIGH_{K-1}..HIGH_0). `center` must lie
/// inside V's monotone bounding box. d=1 gives Figure 1's five pieces,
/// d=2 a nine-piece analogue of Figure 4, d=3 thirteen pieces.
template <int D>
std::vector<Region<D>> shell_partition(const Stencil<D>* st,
                                       const Region<D>& center);

}  // namespace bsmp::geom
