// Strip layouts: the Section-4.2 rearrangement's distance properties as
// measured facts — the justification for the multiprocessor
// simulator's Regime-1 charges.
#include <gtest/gtest.h>

#include "core/expect.hpp"
#include "machine/layout.hpp"

using bsmp::machine::StripLayout;

TEST(Layout, IdentityBasics) {
  auto l = StripLayout::identity(16, 4, 8);
  EXPECT_EQ(l.slot(5), 5);
  EXPECT_EQ(l.base_addr(5), 40);
  EXPECT_EQ(l.owner(5), 1);
  EXPECT_EQ(l.distance(2, 9), 7);
  EXPECT_EQ(l.max_adjacent_distance(), 1);
}

TEST(Layout, RearrangedIsPermutationOfSlots) {
  auto l = StripLayout::rearranged(32, 4, 2);
  std::vector<bool> seen(32, false);
  for (std::int64_t g = 0; g < 32; ++g) {
    std::int64_t s = l.slot(g);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 32);
    EXPECT_FALSE(seen[s]);
    seen[s] = true;
  }
}

TEST(Layout, RearrangedAdjacency) {
  // Consecutive strips: consecutive or q/p apart (Section 4.2).
  for (auto [q, p] : {std::pair{32L, 4L}, {64L, 8L}}) {
    auto l = StripLayout::rearranged(q, p, 1);
    EXPECT_EQ(l.max_adjacent_distance(), q / p) << q << "/" << p;
  }
}

TEST(Layout, FactorPReductionOfTransferDistance) {
  // The headline property behind the Regime-1 charges: under identity,
  // relocating a width-`span` domain's data to its consumers crosses
  // the window's full global diameter (~span); under the
  // rearrangement, every processor's share already rests in a local
  // cluster of diameter ~span/p.
  std::int64_t q = 64, p = 8;
  auto ident = StripLayout::identity(q, p, 1);
  auto rear = StripLayout::rearranged(q, p, 1);
  for (std::int64_t span : {8L, 16L, 32L, 64L}) {
    std::int64_t di = ident.global_window_diameter(span);
    std::int64_t dr = rear.per_proc_window_diameter(span);
    EXPECT_EQ(di, span - 1) << span;
    EXPECT_LE(dr, span / p + 1) << span;
    EXPECT_GE(static_cast<double>(di) / static_cast<double>(dr),
              static_cast<double>(p) / 2.0)
        << span;
  }
}

TEST(Layout, EveryProcessorHoldsShareOfEverySegment) {
  // Section 4.2's second bullet, measured: every aligned segment of p
  // consecutive strips is spread with exactly one strip per processor.
  std::int64_t q = 32, p = 4;
  auto l = StripLayout::rearranged(q, p, 1);
  for (std::int64_t start = 0; start + p <= q; start += p) {
    std::vector<int> per_proc(p, 0);
    for (std::int64_t g = start; g < start + p; ++g)
      ++per_proc[l.owner(g)];
    for (std::int64_t pr = 0; pr < p; ++pr)
      EXPECT_EQ(per_proc[pr], 1) << "segment " << start << " proc " << pr;
  }
}

TEST(Layout, RejectsBadShapes) {
  EXPECT_THROW(StripLayout::identity(10, 4, 1), bsmp::precondition_error);
  EXPECT_THROW(StripLayout::identity(8, 2, 0), bsmp::precondition_error);
  auto l = StripLayout::identity(8, 2, 1);
  EXPECT_THROW(l.slot(8), bsmp::precondition_error);
  EXPECT_THROW(l.per_proc_window_diameter(0), bsmp::precondition_error);
}
