#include <gtest/gtest.h>

#include <unordered_set>

#include "core/logmath.hpp"
#include "sim/reference.hpp"
#include "workload/matmul.hpp"
#include "machine/rearrange.hpp"
#include "workload/rules.hpp"

using namespace bsmp;
using workload::matmul_hram_blocked;
using workload::matmul_hram_naive;
using workload::matmul_mesh_systolic;
using workload::matmul_plain;

namespace {
std::vector<hram::Word> random_matrix(std::int64_t side, std::uint64_t seed) {
  core::SplitMix64 rng(seed);
  std::vector<hram::Word> m(static_cast<std::size_t>(side * side));
  for (auto& v : m) v = rng.next();
  return m;
}
}  // namespace

TEST(Rules, Rule110GrowsTriangleFromPoint) {
  // A single seeded cell under rule 110 produces the classic pattern;
  // check the population after a few steps matches the known counts.
  sep::Guest<1> g;
  g.stencil = geom::Stencil<1>{{16}, 8, 1};
  g.rule = workload::rule110();
  g.input = [](const std::array<int64_t, 1>& x, int64_t) -> sep::Word {
    return x[0] == 12 ? 1 : 0;
  };
  auto res = sim::reference_run<1>(g);
  // Rule 110 from a single 1 expands leftward one cell per step.
  int population = 0;
  for (const auto& [p, v] : res.final_values) population += (v & 1);
  EXPECT_GT(population, 2);
  EXPECT_LE(population, 9);
}

TEST(Rules, MixRuleAvalanche) {
  // Changing one input bit changes (almost) all final values.
  auto g1 = workload::make_mix_guest<1>({8}, 8, 1, 1);
  auto g2 = g1;
  g2.input = [base = g1.input](const std::array<int64_t, 1>& x,
                               int64_t cell) -> sep::Word {
    sep::Word v = base(x, cell);
    return (x[0] == 3 && cell == 0) ? v ^ 1 : v;
  };
  auto r1 = sim::reference_run<1>(g1);
  auto r2 = sim::reference_run<1>(g2);
  int diff = 0;
  for (const auto& [p, v] : r1.final_values)
    if (r2.final_values.at(p) != v) ++diff;
  EXPECT_GE(diff, 6);  // the flip has propagated across the array
}

TEST(Rules, DiffusionStaysBounded) {
  sep::Guest<2> g;
  g.stencil = geom::Stencil<2>{{4, 4}, 10, 1};
  g.rule = workload::diffusion_rule<2>();
  g.input = [](const std::array<int64_t, 2>&, int64_t) -> sep::Word {
    return 100;
  };
  auto res = sim::reference_run<2>(g);
  for (const auto& [p, v] : res.final_values) {
    EXPECT_LE(v, 200u);
    EXPECT_GE(v, 1u);
  }
}

TEST(Matmul, AllThreeAgreeWithPlain) {
  for (std::int64_t side : {4, 8, 16}) {
    auto a = random_matrix(side, 1);
    auto b = random_matrix(side, 2);
    auto want = matmul_plain(side, a, b);
    EXPECT_EQ(matmul_hram_naive(side, a, b).c, want) << side;
    EXPECT_EQ(matmul_hram_blocked(side, a, b).c, want) << side;
    EXPECT_EQ(matmul_mesh_systolic(side, a, b).c, want) << side;
  }
}

TEST(Matmul, IdentityTimesAnything) {
  std::int64_t side = 8;
  auto b = random_matrix(side, 3);
  std::vector<hram::Word> id(static_cast<std::size_t>(side * side), 0);
  for (std::int64_t i = 0; i < side; ++i) id[i * side + i] = 1;
  EXPECT_EQ(matmul_mesh_systolic(side, id, b).c, b);
  EXPECT_EQ(matmul_hram_blocked(side, id, b).c, b);
}

TEST(Matmul, CostOrdering) {
  // mesh << blocked << naive, as in the introduction's example.
  std::int64_t side = 32;  // n = 1024 elements
  auto a = random_matrix(side, 4);
  auto b = random_matrix(side, 5);
  auto mesh = matmul_mesh_systolic(side, a, b);
  auto blocked = matmul_hram_blocked(side, a, b);
  auto naive = matmul_hram_naive(side, a, b);
  EXPECT_LT(mesh.time, blocked.time);
  EXPECT_LT(blocked.time, naive.time);
}

TEST(Matmul, MeshTimeIsLinearInSide) {
  auto a16 = random_matrix(16, 6), b16 = random_matrix(16, 7);
  auto a32 = random_matrix(32, 6), b32 = random_matrix(32, 7);
  double t16 = matmul_mesh_systolic(16, a16, b16).time;
  double t32 = matmul_mesh_systolic(32, a32, b32).time;
  EXPECT_NEAR(t32 / t16, 2.0, 0.3);
}

TEST(Matmul, NaiveTimeScalesAsN2) {
  // time(2*side) / time(side) ~ 2^4 (n doubles twice; n^2 -> 16x).
  auto a16 = random_matrix(16, 8), b16 = random_matrix(16, 9);
  auto a32 = random_matrix(32, 8), b32 = random_matrix(32, 9);
  double r = matmul_hram_naive(32, a32, b32).time /
             matmul_hram_naive(16, a16, b16).time;
  EXPECT_GT(r, 10.0);
  EXPECT_LT(r, 24.0);
}

TEST(Matmul, BlockedBeatsNaiveAsymptotically) {
  // Naive pays Θ(sqrt(n)) per operation, blocked Θ(log n): the gain
  // grows roughly as sqrt(n)/log n (noticeable from side ~ 32 on).
  double prev_gain = 0;
  for (std::int64_t side : {16, 32, 64}) {
    auto a = random_matrix(side, 10), b = random_matrix(side, 11);
    double gain = matmul_hram_naive(side, a, b).time /
                  matmul_hram_blocked(side, a, b).time;
    EXPECT_GT(gain, prev_gain * 1.05) << side;  // gain grows with n
    prev_gain = gain;
  }
  EXPECT_GT(prev_gain, 1.5);
}

TEST(Rearrange, IsAPermutation) {
  for (auto [q, p] : {std::pair{16L, 4L}, {32L, 4L}, {64L, 8L}}) {
    auto pos = machine::rearrangement(q, p);
    std::unordered_set<std::int64_t> seen(pos.begin(), pos.end());
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(q));
    for (auto v : pos) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, q);
    }
  }
}

TEST(Rearrange, ConsecutiveStripsStayCloseOrAtQOverP) {
  // Section 4.2, first bullet: initially consecutive indices are either
  // consecutive or at distance q/p in the rearranged array.
  for (auto [q, p] : {std::pair{16L, 4L}, {64L, 8L}, {32L, 2L}}) {
    auto pos = machine::rearrangement(q, p);
    for (std::int64_t g = 0; g + 1 < q; ++g) {
      std::int64_t d = std::abs(pos[g + 1] - pos[g]);
      EXPECT_TRUE(d == 1 || d == q / p)
          << "q=" << q << " p=" << p << " g=" << g << " d=" << d;
    }
  }
}

TEST(Rearrange, EverySegmentNearEveryProcessor) {
  // Section 4.2, second bullet: processor j sits at abscissa j*(q/p);
  // every original segment of length p has a strip within q/p of it.
  std::int64_t q = 64, p = 8, qp = q / p;
  auto pos = machine::rearrangement(q, p);
  for (std::int64_t j = 0; j < p; ++j) {
    for (std::int64_t seg = 0; seg < q / p; ++seg) {
      bool near = false;
      for (std::int64_t off = 0; off < p; ++off) {
        std::int64_t g = seg * p + off;
        if (std::abs(pos[g] - j * qp) <= qp) near = true;
      }
      EXPECT_TRUE(near) << "segment " << seg << " far from proc " << j;
    }
  }
}

TEST(Rearrange, Pi1ReversesOddSegments) {
  auto p1 = machine::pi1(8, 2);
  // segments: (0,1)(2,3)(4,5)(6,7); odd segments reversed.
  EXPECT_EQ(p1[0], 0);
  EXPECT_EQ(p1[1], 1);
  EXPECT_EQ(p1[2], 3);
  EXPECT_EQ(p1[3], 2);
  EXPECT_EQ(p1[6], 7);
  EXPECT_EQ(p1[7], 6);
}

TEST(Rearrange, Pi2IsShuffle) {
  auto p2 = machine::pi2(8, 2);
  // i = a*2+b -> b*4+a.
  EXPECT_EQ(p2[0], 0);
  EXPECT_EQ(p2[1], 4);
  EXPECT_EQ(p2[2], 1);
  EXPECT_EQ(p2[7], 7);
}

TEST(Rearrange, RejectsBadShape) {
  EXPECT_THROW(machine::rearrangement(10, 4), bsmp::precondition_error);
  EXPECT_THROW(machine::rearrangement(4, 8), bsmp::precondition_error);
}
