#include "engine/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>  // gethostname
#endif

#ifndef BSMP_GIT_SHA
#define BSMP_GIT_SHA "unknown"
#endif
#ifndef BSMP_BUILD_TYPE_STR
#define BSMP_BUILD_TYPE_STR "unknown"
#endif

namespace bsmp::engine::trace {

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kTask: return "task";
    case Cat::kSepRegion: return "sep-region";
    case Cat::kStaging: return "staging";
    case Cat::kSweepPoint: return "sweep-point";
    case Cat::kSim: return "sim";
    case Cat::kCount: break;
  }
  return "?";
}

int duration_bucket(std::uint64_t ns) {
  int b = 0;
  while (ns != 0) {
    ns >>= 1;
    ++b;
  }
  // 0 ns -> 0; [2^(b-1), 2^b) -> b; top bucket absorbs the tail so the
  // histogram index never escapes the array.
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

HistSnapshot& HistSnapshot::operator-=(const HistSnapshot& o) {
  for (int c = 0; c < kNumCats; ++c)
    for (int b = 0; b < kHistBuckets; ++b) span_ns[c][b] -= o.span_ns[c][b];
  for (int b = 0; b < kHistBuckets; ++b)
    steal_latency_ns[b] -= o.steal_latency_ns[b];
  return *this;
}

bool HistSnapshot::empty() const {
  for (int c = 0; c < kNumCats; ++c)
    for (auto v : span_ns[c])
      if (v != 0) return false;
  for (auto v : steal_latency_ns)
    if (v != 0) return false;
  return true;
}

namespace {

std::string env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string(fallback);
}

[[maybe_unused]] std::uint64_t fnv1a(std::uint64_t h, const void* data,
                                     std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Same defensive escaping as the metrics serializer: details and
// manifest values are caller-controlled ASCII, but the artifact must
// always be valid JSON.
void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

#if BSMP_TRACE_ENABLED

namespace detail {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("BSMP_TRACE");
  return env != nullptr && std::strcmp(env, "0") != 0;
}()};

namespace {

struct Ev {
  std::uint64_t t0;
  std::uint64_t dur;
  const char* name;
  std::int64_t a0, a1;
  Cat cat;
  char ph;
  std::uint8_t dlen;
  char detail[23];
};

struct ThreadBuf {
  explicit ThreadBuf(int tid_, std::size_t cap_) : tid(tid_), cap(cap_) {
    ev.reserve(std::min<std::size_t>(cap, 4096));
  }
  int tid;
  std::size_t cap;
  std::vector<Ev> ev;  // grows up to cap, then `dropped` counts
  std::uint64_t dropped = 0;
  HistSnapshot hist;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::size_t buffer_capacity() {
  static const std::size_t cap = [] {
    const char* env = std::getenv("BSMP_TRACE_BUFFER");
    if (env != nullptr) {
      long long v = std::atoll(env);
      if (v >= 1024) return static_cast<std::size_t>(v);
    }
    return static_cast<std::size_t>(1) << 18;
  }();
  return cap;
}

// The thread keeps a reference so its buffer can never die under it;
// the registry keeps another so the events survive the thread.
thread_local std::shared_ptr<ThreadBuf> tl_buf;

ThreadBuf& local_buf() {
  if (tl_buf == nullptr) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    tl_buf = std::make_shared<ThreadBuf>(static_cast<int>(r.bufs.size()),
                                         buffer_capacity());
    r.bufs.push_back(tl_buf);
  }
  return *tl_buf;
}

}  // namespace

void record(Cat cat, char ph, const char* name, std::uint64_t t0,
            std::uint64_t dur, std::int64_t a0, std::int64_t a1,
            const char* detail, std::size_t detail_len) {
  ThreadBuf& b = local_buf();
  // Histograms count every span, even when the timeline is full — the
  // metrics v2 histogram blocks stay exact under event drops.
  if (ph == 'X')
    ++b.hist.span_ns[static_cast<int>(cat)][duration_bucket(dur)];
  if (b.ev.size() >= b.cap) {
    ++b.dropped;
    return;
  }
  Ev e;
  e.t0 = t0;
  e.dur = dur;
  e.name = name;
  e.a0 = a0;
  e.a1 = a1;
  e.cat = cat;
  e.ph = ph;
  e.dlen = static_cast<std::uint8_t>(
      detail_len < sizeof e.detail ? detail_len : sizeof e.detail);
  if (e.dlen != 0) std::memcpy(e.detail, detail, e.dlen);
  b.ev.push_back(e);
}

void record_steal_latency(std::uint64_t ns) {
  ++local_buf().hist.steal_latency_ns[duration_bucket(ns)];
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::vector<SpanRec> snapshot() {
  std::vector<SpanRec> out;
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const auto& b : r.bufs) {
    for (const auto& e : b->ev) {
      SpanRec s;
      s.name = e.name;
      s.cat = e.cat;
      s.ph = e.ph;
      s.tid = b->tid;
      s.t0_ns = e.t0;
      s.dur_ns = e.dur;
      s.a0 = e.a0;
      s.a1 = e.a1;
      s.detail.assign(e.detail, e.dlen);
      out.push_back(std::move(s));
    }
  }
  return out;
}

HistSnapshot hist_snapshot() {
  HistSnapshot sum;
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const auto& b : r.bufs) {
    for (int c = 0; c < kNumCats; ++c)
      for (int k = 0; k < kHistBuckets; ++k)
        sum.span_ns[c][k] += b->hist.span_ns[c][k];
    for (int k = 0; k < kHistBuckets; ++k)
      sum.steal_latency_ns[k] += b->hist.steal_latency_ns[k];
  }
  return sum;
}

std::uint64_t events_recorded() {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::uint64_t n = 0;
  for (const auto& b : r.bufs) n += b->ev.size();
  return n;
}

std::uint64_t dropped() {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::uint64_t n = 0;
  for (const auto& b : r.bufs) n += b->dropped;
  return n;
}

std::uint64_t mark() { return detail::now_ns(); }

std::uint64_t digest() {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lk(r.mu);
  // Sum (mod 2^64) of per-event identity hashes: order-independent, so
  // a deterministic span set digests identically however threads
  // interleaved the recording.
  std::uint64_t sum = 0;
  for (const auto& b : r.bufs) {
    for (const auto& e : b->ev) {
      std::uint64_t h = 0xcbf29ce484222325ULL;
      h = fnv1a(h, e.name, std::strlen(e.name));
      h = fnv1a(h, &e.cat, sizeof e.cat);
      h = fnv1a(h, &e.ph, sizeof e.ph);
      h = fnv1a(h, &e.a0, sizeof e.a0);
      h = fnv1a(h, &e.a1, sizeof e.a1);
      h = fnv1a(h, e.detail, e.dlen);
      sum += h;
    }
  }
  return sum;
}

void clear() {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto& bufs = r.bufs;
  for (auto& b : bufs) {
    b->ev.clear();
    b->dropped = 0;
    b->hist = HistSnapshot{};
  }
  // Buffers only the registry still references belong to exited
  // threads: release their memory (tids are not reused; new threads
  // register fresh buffers).
  bufs.erase(std::remove_if(bufs.begin(), bufs.end(),
                            [](const std::shared_ptr<detail::ThreadBuf>& b) {
                              return b.use_count() == 1;
                            }),
             bufs.end());
}

#else  // !BSMP_TRACE_ENABLED

std::vector<SpanRec> snapshot() { return {}; }
HistSnapshot hist_snapshot() { return {}; }
std::uint64_t events_recorded() { return 0; }
std::uint64_t dropped() { return 0; }
std::uint64_t mark() { return 0; }
std::uint64_t digest() { return 0; }
void clear() {}

#endif  // BSMP_TRACE_ENABLED

RunManifest make_run_manifest(const std::string& name) {
  RunManifest m;
  m.name = name;
  m.git_sha = BSMP_GIT_SHA;
  m.build_type = BSMP_BUILD_TYPE_STR;
#ifdef __VERSION__
  m.compiler = __VERSION__;
#else
  m.compiler = "unknown";
#endif
  unsigned hw = std::thread::hardware_concurrency();
  m.hardware_threads = hw == 0 ? 1 : static_cast<int>(hw);
  m.num_cpus = m.hardware_threads;
#if defined(__unix__) || defined(__APPLE__)
  {
    char host[256] = {};
    if (gethostname(host, sizeof host - 1) == 0 && host[0] != '\0')
      m.hostname = host;
  }
#endif
  m.trace_compiled = compiled();
  m.trace_enabled = enabled();
  for (const char* knob : {"BSMP_TRACE", "BSMP_TRACE_BUFFER",
                           "BSMP_METRICS_DIR", "BSMP_VALIDATE",
                           "BSMP_PARALLEL_GRAIN", "BSMP_RELOC_GRAIN",
                           "BSMP_WAVE_GRAIN", "BSMP_SIMD", "BSMP_ARENA",
                           "BSMP_PLAN_CACHE_BYTES"})
    m.knobs.emplace_back(knob, env_or(knob, "unset"));
  m.trace_events = events_recorded();
  m.trace_dropped = dropped();
  m.trace_digest = hex64(digest());
  return m;
}

namespace {

void write_event_common(std::ostream& os, const char* name, char ph,
                        double ts_us, int tid) {
  os << "{\"name\": ";
  json_string(os, name);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", ts_us);
  os << ", \"ph\": \"" << ph << "\", \"ts\": " << buf
     << ", \"pid\": 1, \"tid\": " << tid;
}

}  // namespace

bool write_chrome_json(const std::string& path, const RunManifest& manifest) {
  std::ofstream f(path);
  if (!f) return false;

  std::vector<SpanRec> evs = snapshot();
  // Rebase timestamps so the timeline starts near zero.
  std::uint64_t t_base = ~std::uint64_t{0};
  int max_tid = -1;
  for (const auto& e : evs) {
    t_base = std::min(t_base, e.t0_ns);
    max_tid = std::max(max_tid, e.tid);
  }
  if (evs.empty()) t_base = 0;
  auto us = [&](std::uint64_t ns) {
    return static_cast<double>(ns - t_base) / 1000.0;
  };

  f << "{\n  \"traceEvents\": [";
  bool first = true;
  auto sep = [&]() -> std::ostream& {
    f << (first ? "\n    " : ",\n    ");
    first = false;
    return f;
  };

  // Metadata: process and thread names (tid 0 is the first thread that
  // recorded — conventionally the main/caller thread).
  sep() << "{\"name\": \"process_name\", \"ph\": \"M\", \"ts\": 0, "
           "\"pid\": 1, \"tid\": 0, \"args\": {\"name\": ";
  json_string(f, manifest.name);
  f << "}}";
  for (int t = 0; t <= max_tid; ++t)
    sep() << "{\"name\": \"thread_name\", \"ph\": \"M\", \"ts\": 0, "
             "\"pid\": 1, \"tid\": "
          << t << ", \"args\": {\"name\": \"thread-" << t << "\"}}";

  auto write_args = [&](const SpanRec& e) {
    f << ", \"args\": {\"a0\": " << e.a0 << ", \"a1\": " << e.a1;
    if (!e.detail.empty()) {
      f << ", \"detail\": ";
      json_string(f, e.detail);
    }
    f << "}}";
  };

  // Complete spans are recorded at their *end*, so a parent sits after
  // its children in the buffer. Reconstruct properly nested B/E pairs
  // per thread: sort by (start asc, end desc) and close every span
  // whose end precedes the next span's start.
  std::vector<std::size_t> idx;
  for (int t = 0; t <= max_tid; ++t) {
    idx.clear();
    for (std::size_t i = 0; i < evs.size(); ++i)
      if (evs[i].tid == t && evs[i].ph == 'X') idx.push_back(i);
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a,
                                                 std::size_t b) {
      if (evs[a].t0_ns != evs[b].t0_ns) return evs[a].t0_ns < evs[b].t0_ns;
      return evs[a].dur_ns > evs[b].dur_ns;
    });
    std::vector<std::size_t> stack;
    auto close = [&](std::size_t i) {
      sep();
      write_event_common(f, evs[i].name, 'E',
                         us(evs[i].t0_ns + evs[i].dur_ns), t);
      f << "}";
    };
    for (std::size_t i : idx) {
      while (!stack.empty() &&
             evs[stack.back()].t0_ns + evs[stack.back()].dur_ns <=
                 evs[i].t0_ns) {
        close(stack.back());
        stack.pop_back();
      }
      sep();
      write_event_common(f, evs[i].name, 'B', us(evs[i].t0_ns), t);
      f << ", \"cat\": ";
      json_string(f, cat_name(evs[i].cat));
      write_args(evs[i]);
      stack.push_back(i);
    }
    while (!stack.empty()) {
      close(stack.back());
      stack.pop_back();
    }
  }

  for (const auto& e : evs) {
    if (e.ph != 'i') continue;
    sep();
    write_event_common(f, e.name, 'i', us(e.t0_ns), e.tid);
    f << ", \"cat\": ";
    json_string(f, cat_name(e.cat));
    f << ", \"s\": \"t\"";
    write_args(e);
  }

  f << "\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\n";
  auto kv = [&](const char* k, const std::string& v, bool last = false) {
    f << "    ";
    json_string(f, k);
    f << ": ";
    json_string(f, v);
    f << (last ? "\n" : ",\n");
  };
  kv("name", manifest.name);
  kv("git_sha", manifest.git_sha);
  kv("build_type", manifest.build_type);
  kv("compiler", manifest.compiler);
  kv("hardware_threads", std::to_string(manifest.hardware_threads));
  kv("num_cpus", std::to_string(manifest.num_cpus));
  kv("hostname", manifest.hostname);
  kv("simd_isa", manifest.simd_isa);
  for (const auto& [k, v] : manifest.knobs) kv(k.c_str(), v);
  kv("trace_events", std::to_string(manifest.trace_events));
  kv("trace_dropped", std::to_string(manifest.trace_dropped));
  kv("trace_digest", manifest.trace_digest, true);
  f << "  }\n}\n";
  return static_cast<bool>(f);
}

}  // namespace bsmp::engine::trace
