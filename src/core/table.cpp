#include "core/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/expect.hpp"

namespace bsmp::core {

namespace {
std::string render(const Cell& c) {
  if (auto* s = std::get_if<std::string>(&c)) return *s;
  if (auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  return format_real(std::get<double>(c));
}
}  // namespace

std::string format_real(double v, int digits) {
  std::ostringstream os;
  os << std::setprecision(digits) << v;
  return os.str();
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  BSMP_REQUIRE(!columns_.empty());
}

void Table::add_row(std::vector<Cell> row) {
  BSMP_REQUIRE_MSG(row.size() == columns_.size(),
                   "row has " << row.size() << " cells, table has "
                              << columns_.size() << " columns");
  rows_.push_back(std::move(row));
}

bool Table::operator==(const Table& other) const {
  return title_ == other.title_ && columns_ == other.columns_ &&
         rows_ == other.rows_;
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::uint64_t Table::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : to_string()) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void Table::print_csv(std::ostream& os) const {
  auto sanitize = [](std::string s) {
    for (char& c : s)
      if (c == ',') c = ';';
    return s;
  };
  for (std::size_t j = 0; j < columns_.size(); ++j)
    os << (j ? "," : "") << sanitize(columns_[j]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t j = 0; j < row.size(); ++j)
      os << (j ? "," : "") << sanitize(render(row[j]));
    os << '\n';
  }
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  std::vector<std::vector<std::string>> cells(rows_.size());
  for (std::size_t j = 0; j < columns_.size(); ++j)
    width[j] = columns_[j].size();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    cells[i].reserve(columns_.size());
    for (std::size_t j = 0; j < columns_.size(); ++j) {
      cells[i].push_back(render(rows_[i][j]));
      width[j] = std::max(width[j], cells[i][j].size());
    }
  }

  os << "== " << title_ << " ==\n";
  for (std::size_t j = 0; j < columns_.size(); ++j)
    os << std::setw(static_cast<int>(width[j]) + 2) << columns_[j];
  os << '\n';
  for (const auto& row : cells) {
    for (std::size_t j = 0; j < columns_.size(); ++j)
      os << std::setw(static_cast<int>(width[j]) + 2) << row[j];
    os << '\n';
  }
}

}  // namespace bsmp::core
