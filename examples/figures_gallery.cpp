// Figures gallery: renders the paper's decomposition figures in ASCII.
//
//   Figure 1 — the five-piece ordered partition of the d=1 volume V;
//   Figure 2 — the zig-zag band of diamonds assigned to one processor;
//   the 4-way diamond split of Theorem 2's separator;
//   a time-slice view of the 14-way octahedron split (Figure 3a).
//
//   $ ./figures_gallery [n]
#include <cstdlib>
#include <iostream>

#include "geom/figures.hpp"
#include "geom/render.hpp"
#include "geom/tiling.hpp"
#include "machine/rearrange.hpp"

using namespace bsmp;

int main(int argc, char** argv) {
  std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 24;
  if (n < 8 || n % 4 != 0) {
    std::cerr << "usage: figures_gallery [n multiple of 4, >= 8]\n";
    return 2;
  }

  geom::Stencil<1> st{{n}, n, 1};

  std::cout << "Figure 1 — ordered partition (U1..U5) of V = [0," << n
            << ") x [0," << n << "):\n\n";
  auto fig1 = geom::fig1_partition(&st);
  std::cout << geom::render_partition_1d(st, fig1) << "\n";

  std::cout << "Diamond separator (Theorem 2): D(n) splits into four "
               "D(n/2) in topological order 1,2,3,4:\n\n";
  auto diamond = geom::make_diamond(&st, n / 2, -n / 2, n);
  std::cout << geom::render_partition_1d(st, diamond.split()) << "\n";

  std::cout << "Figure 2 — one processor's zig-zag band: the D(s) "
               "subtiles owned by processor 0 of p=4 (s=" << n / 8
            << "):\n\n";
  {
    std::int64_t s = n / 8, p = 4;
    geom::TileGrid<1> grid(&st, s);
    std::vector<geom::Region<1>> mine;
    for (const auto& wave : grid.wavefronts())
      for (const auto& tile : wave) {
        auto fp = tile.first_point();
        if (fp && (fp->x[0] / s) % p == 0) mine.push_back(tile);
      }
    std::cout << geom::render_partition_1d(st, mine) << "\n";
  }

  std::cout << "Figure 3a — octahedron P splitting into 6 P + 8 W "
               "(one time-slice through the middle):\n\n";
  {
    geom::Stencil<2> st2{{2 * n, 2 * n}, 2 * n, 1};
    auto p = geom::make_octahedron(&st2, n / 2, -n / 2, n / 2, -n / 2, n);
    auto kids = p.split();
    auto [tmin, tmax] = p.time_range();
    std::cout << geom::render_partition_2d_slice(st2, kids,
                                                 (tmin + tmax) / 2);
    std::cout << "\npieces: " << kids.size() << " (";
    int np = 0, nw = 0;
    for (const auto& k : kids) {
      if (geom::classify_d2(k) == geom::DomainClass::kOctahedron)
        ++np;
      else
        ++nw;
    }
    std::cout << np << " octahedra, " << nw << " tetrahedra)\n";
  }
  return 0;
}
