// TileGrid<D>: cover of the whole space-time volume V (all vertices of
// a Stencil) by congruent Region boxes of a given monotone width,
// visited in wavefront order (ascending sum of grid indices).
//
// For d=1 with tile width n this yields the handful of full/truncated
// D(n) diamonds of Figure 1; for d=2 with tile width sqrt(n) it yields
// the full/truncated octahedra and tetrahedra of Figure 4. Because dag
// arcs are non-increasing in every monotone coordinate, tiles on one
// wavefront are mutually independent and depend only on earlier
// wavefronts — the global execution order used by all simulators.
#pragma once

#include <vector>

#include "core/expect.hpp"
#include "core/logmath.hpp"
#include "geom/region.hpp"

namespace bsmp::geom {

template <int D>
class TileGrid {
 public:
  static constexpr int K = kMono<D>;

  TileGrid(const Stencil<D>* stencil, int64_t tile_width)
      : stencil_(stencil), w_(tile_width) {
    BSMP_REQUIRE(stencil != nullptr);
    BSMP_REQUIRE(tile_width >= 1);
    for (int i = 0; i < D; ++i) {
      // mono coordinate 2i   = t + x_i in [0, horizon-1 + extent_i-1]
      // mono coordinate 2i+1 = t - x_i in [-(extent_i-1), horizon-1]
      base_[2 * i] = 0;
      base_[2 * i + 1] = -(stencil_->extent[i] - 1);
      int64_t span_plus = (stencil_->horizon - 1) + (stencil_->extent[i] - 1);
      int64_t span_minus = (stencil_->horizon - 1) + (stencil_->extent[i] - 1);
      cells_[2 * i] = core::div_ceil(span_plus + 1, w_);
      cells_[2 * i + 1] = core::div_ceil(span_minus + 1, w_);
    }
  }

  int64_t tile_width() const { return w_; }

  /// The tile at grid index g (may be empty after clipping).
  Region<D> tile(const std::array<int64_t, K>& g) const {
    std::array<int64_t, K> lo, hi;
    for (int k = 0; k < K; ++k) {
      BSMP_REQUIRE(g[k] >= 0 && g[k] < cells_[k]);
      lo[k] = base_[k] + g[k] * w_;
      hi[k] = lo[k] + w_;
    }
    return Region<D>(stencil_, lo, hi);
  }

  /// Non-empty tiles grouped by wavefront (sum of grid indices).
  /// wavefronts()[k] may be executed only after wavefronts 0..k-1, and
  /// its tiles are mutually independent.
  std::vector<std::vector<Region<D>>> wavefronts() const {
    int64_t max_sum = 0;
    for (int k = 0; k < K; ++k) max_sum += cells_[k] - 1;
    std::vector<std::vector<Region<D>>> waves(
        static_cast<std::size_t>(max_sum + 1));
    std::array<int64_t, K> g{};
    for (;;) {
      int64_t sum = 0;
      for (int k = 0; k < K; ++k) sum += g[k];
      Region<D> t = tile(g);
      if (!t.empty()) waves[static_cast<std::size_t>(sum)].push_back(t);
      // odometer increment
      int k = 0;
      while (k < K) {
        if (++g[k] < cells_[k]) break;
        g[k] = 0;
        ++k;
      }
      if (k == K) break;
    }
    // Drop trailing empty wavefronts (clipping can empty them).
    while (!waves.empty() && waves.back().empty()) waves.pop_back();
    return waves;
  }

  /// Total number of non-empty tiles.
  int64_t num_tiles() const {
    int64_t n = 0;
    for (const auto& w : wavefronts()) n += static_cast<int64_t>(w.size());
    return n;
  }

 private:
  const Stencil<D>* stencil_;
  int64_t w_;
  std::array<int64_t, K> base_{};
  std::array<int64_t, K> cells_{};
};

}  // namespace bsmp::geom
