# Empty dependencies file for test_sep_executor.
# This may be replaced when dependencies are built.
