// Every simulator computes exactly what the guest computes, and its
// charged time respects the paper's bounds.
#include <gtest/gtest.h>

#include "analytic/tradeoff.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/multiproc.hpp"
#include "sim/naive.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;

namespace {

machine::MachineSpec spec(int d, int64_t n, int64_t p, int64_t m) {
  machine::MachineSpec s;
  s.d = d;
  s.n = n;
  s.p = p;
  s.m = m;
  return s;
}

}  // namespace

TEST(NaiveSim, MatchesReferenceD1) {
  for (int64_t p : {1, 2, 4}) {
    for (int64_t m : {1, 3}) {
      auto g = workload::make_mix_guest<1>({8}, 11, m, 42);
      auto ref = sim::reference_run<1>(g);
      auto res = sim::simulate_naive<1>(g, spec(1, 8, p, m));
      EXPECT_TRUE(sim::same_values<1>(res.final_values, ref.final_values))
          << "p=" << p << " m=" << m;
      EXPECT_GT(res.slowdown(), 1.0);
    }
  }
}

TEST(NaiveSim, MatchesReferenceD2) {
  for (int64_t p : {1, 4}) {
    auto g = workload::make_mix_guest<2>({4, 4}, 6, 2, 43);
    auto ref = sim::reference_run<2>(g);
    auto res = sim::simulate_naive<2>(g, spec(2, 16, p, 2));
    EXPECT_TRUE(sim::same_values<2>(res.final_values, ref.final_values));
  }
}

TEST(NaiveSim, UniprocessorSlowdownMatchesProposition1) {
  // Slowdown Θ(n^(1+1/d)) for p=1: the measured/bound ratio must stay
  // within a constant band across a geometric sweep.
  double lo = 1e18, hi = 0;
  for (int64_t n : {16, 32, 64, 128}) {
    auto g = workload::make_mix_guest<1>({n}, 8, 1, 7);
    auto res = sim::simulate_naive<1>(g, spec(1, n, 1, 1));
    double ratio = res.slowdown() / analytic::naive_bound(1, (double)n, 1, 1);
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
  }
  EXPECT_GT(lo, 0.05);
  EXPECT_LT(hi / lo, 4.0) << "naive slowdown does not scale as n^2";
}

TEST(NaiveSim, InstantaneousModelIsBrent) {
  // In the instantaneous model the slowdown is Θ(n/p) with a small
  // constant — Brent's principle.
  for (int64_t p : {1, 2, 8}) {
    auto g = workload::make_mix_guest<1>({16}, 12, 1, 9);
    sim::NaiveConfig cfg;
    cfg.instantaneous = true;
    auto res = sim::simulate_naive<1>(g, spec(1, 16, p, 1), cfg);
    double brent = analytic::brent_bound(16, (double)p);
    EXPECT_GE(res.slowdown(), brent);
    EXPECT_LE(res.slowdown(), 6.0 * brent) << "p=" << p;
  }
}

TEST(NaiveSim, PipelinedMemoryRemovesLocalitySlowdown) {
  // Section 6: with pipelined memory the uniprocessor slowdown is
  // O(n), not O(n^2).
  auto g = workload::make_mix_guest<1>({64}, 8, 1, 11);
  sim::NaiveConfig piped;
  piped.pipelined = true;
  auto res_p = sim::simulate_naive<1>(g, spec(1, 64, 1, 1), piped);
  auto res_n = sim::simulate_naive<1>(g, spec(1, 64, 1, 1));
  auto ref = sim::reference_run<1>(g);
  EXPECT_TRUE(sim::same_values<1>(res_p.final_values, ref.final_values));
  EXPECT_LT(res_p.slowdown(), 16.0 * 64.0);       // O(n)
  EXPECT_GT(res_n.slowdown(), res_p.slowdown());  // pipelining helps
}

TEST(DcUniproc, MatchesReferenceD1) {
  for (int64_t n : {8, 16}) {
    for (int64_t m : {1, 2, 5}) {
      for (int64_t T : {8, 19}) {
        auto g = workload::make_mix_guest<1>({n}, T, m, n + m + T);
        auto ref = sim::reference_run<1>(g);
        auto res = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, m));
        EXPECT_TRUE(sim::same_values<1>(res.final_values, ref.final_values))
            << "n=" << n << " m=" << m << " T=" << T;
        EXPECT_EQ(res.vertices, n * T);
      }
    }
  }
}

TEST(DcUniproc, MatchesReferenceD2) {
  for (int64_t side : {4, 6}) {
    for (int64_t m : {1, 2}) {
      auto g = workload::make_mix_guest<2>({side, side}, side + 3, m, side);
      auto ref = sim::reference_run<2>(g);
      auto res = sim::simulate_dc_uniproc<2>(g, spec(2, side * side, 1, m));
      EXPECT_TRUE(sim::same_values<2>(res.final_values, ref.final_values))
          << side << " " << m;
    }
  }
}

TEST(DcUniproc, MatchesReferenceD3) {
  auto g = workload::make_mix_guest<3>({3, 3, 3}, 4, 1, 77);
  auto ref = sim::reference_run<3>(g);
  machine::MachineSpec host = spec(3, 27, 1, 1);
  auto res = sim::simulate_dc_uniproc<3>(g, host);
  EXPECT_TRUE(sim::same_values<3>(res.final_values, ref.final_values));
}

TEST(DcUniproc, Theorem2SlowdownShape) {
  // d=1, m=1: slowdown O(n log n). Check measured/bound is bounded and
  // does not drift upward across a geometric sweep.
  std::vector<double> ratios;
  for (int64_t n : {16, 32, 64, 128}) {
    auto g = workload::make_mix_guest<1>({n}, n, 1, 3);
    auto res = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, 1));
    ratios.push_back(res.slowdown() / analytic::thm2_bound((double)n));
  }
  for (double r : ratios) EXPECT_LT(r, 800.0);
  EXPECT_LT(ratios.back() / ratios.front(), 3.0)
      << "slowdown grows faster than n log n";
}

TEST(DcUniproc, GainsOnNaiveAsNGrows) {
  // Theorem 2 vs Proposition 1: Θ(n log n) vs Θ(n^2). The D&C/naive
  // slowdown ratio must shrink like log(n)/n as n doubles (with our
  // honest constants the absolute crossover sits near n ~ 2000, so we
  // assert the trend, which is what the theorem claims).
  double prev = 1e300;
  for (int64_t n : {64, 128, 256, 512}) {
    auto g = workload::make_mix_guest<1>({n}, n, 1, 8);
    auto dc = sim::simulate_dc_uniproc<1>(g, spec(1, n, 1, 1));
    auto nv = sim::simulate_naive<1>(g, spec(1, n, 1, 1));
    double ratio = dc.slowdown() / nv.slowdown();
    EXPECT_LT(ratio, 0.75 * prev) << "n=" << n;
    prev = ratio;
  }
}

TEST(Multiproc, MatchesReferenceD1) {
  for (int64_t p : {1, 2, 4}) {
    for (int64_t m : {1, 2, 4}) {
      for (int64_t s : {2, 4}) {
        if (s * p > 16) continue;
        auto g = workload::make_mix_guest<1>({16}, 16, m, p * 100 + m);
        auto ref = sim::reference_run<1>(g);
        sim::MultiprocConfig cfg;
        cfg.s = s;
        auto res = sim::simulate_multiproc<1>(g, spec(1, 16, p, m), cfg);
        EXPECT_TRUE(sim::same_values<1>(res.final_values, ref.final_values))
            << "p=" << p << " m=" << m << " s=" << s;
        EXPECT_EQ(res.vertices, 16 * 16);
      }
    }
  }
}

TEST(Multiproc, MatchesReferenceD2) {
  for (int64_t p : {1, 4}) {
    auto g = workload::make_mix_guest<2>({4, 4}, 7, 2, 500 + p);
    auto ref = sim::reference_run<2>(g);
    sim::MultiprocConfig cfg;
    cfg.s = 2;
    auto res = sim::simulate_multiproc<2>(g, spec(2, 16, p, 2), cfg);
    EXPECT_TRUE(sim::same_values<2>(res.final_values, ref.final_values))
        << "p=" << p;
  }
}

TEST(Multiproc, LongHorizonMatchesReference) {
  auto g = workload::make_mix_guest<1>({8}, 40, 2, 4242);
  auto ref = sim::reference_run<1>(g);
  sim::MultiprocConfig cfg;
  cfg.s = 2;
  auto res = sim::simulate_multiproc<1>(g, spec(1, 8, 4, 2), cfg);
  EXPECT_TRUE(sim::same_values<1>(res.final_values, ref.final_values));
}

TEST(Multiproc, SlowdownTracksTheorem4Bound) {
  // The closed form (n/p) A(n,m,p) carries no constants while the
  // executor's τ0 is a few hundred, so the measured/bound ratio is a
  // per-(m) constant: assert it is bounded and FLAT as n doubles —
  // that is the Θ-correspondence Theorem 4 claims.
  for (int64_t p : {2, 4}) {
    for (int64_t m : {1, 2, 4}) {
      double first = 0, last = 0;
      // Start at n=128: below that, s* has not yet crossed the m
      // boundary and the mechanism mix is still transient.
      for (int64_t n : {128, 256, 512}) {
        auto g = workload::make_mix_guest<1>({n}, n, m, 1);
        sim::MultiprocConfig cfg;
        cfg.s = std::max<int64_t>(
            1, (int64_t)analytic::s_star((double)n, (double)m, (double)p));
        while (cfg.s * p > n) cfg.s /= 2;
        auto res = sim::simulate_multiproc<1>(g, spec(1, n, p, m), cfg);
        double bound = analytic::slowdown_bound(1, (double)n, (double)m,
                                                (double)p);
        double ratio = res.slowdown() / bound;
        if (first == 0) first = ratio;
        last = ratio;
        EXPECT_LT(ratio, 2000.0) << "p=" << p << " m=" << m << " n=" << n;
      }
      EXPECT_LT(last / first, 2.5)
          << "ratio drifts with n: wrong exponent (p=" << p << " m=" << m
          << ")";
    }
  }
}

TEST(Multiproc, MoreProcessorsNeverSlower) {
  auto g = workload::make_mix_guest<1>({32}, 32, 2, 31);
  double prev = 1e18;
  for (int64_t p : {1, 2, 4, 8}) {
    sim::MultiprocConfig cfg;
    cfg.s = 4;
    auto res = sim::simulate_multiproc<1>(g, spec(1, 32, p, 2), cfg);
    EXPECT_LT(res.time, prev * 1.05) << "p=" << p;
    prev = res.time;
  }
}

TEST(Multiproc, UtilizationIsSane) {
  auto g = workload::make_mix_guest<1>({32}, 32, 1, 17);
  sim::MultiprocConfig cfg;
  cfg.s = 4;
  auto res = sim::simulate_multiproc<1>(g, spec(1, 32, 4, 1), cfg);
  EXPECT_GT(res.utilization, 0.05);
  EXPECT_LE(res.utilization, 1.0 + 1e-9);
}

TEST(Multiproc, RearrangementChargedOnce) {
  auto g = workload::make_mix_guest<1>({16}, 16, 1, 5);
  sim::MultiprocConfig with;
  with.s = 2;
  sim::MultiprocConfig without = with;
  without.charge_rearrangement = false;
  auto a = sim::simulate_multiproc<1>(g, spec(1, 16, 4, 1), with);
  auto b = sim::simulate_multiproc<1>(g, spec(1, 16, 4, 1), without);
  EXPECT_GT(a.preprocess, 0.0);
  EXPECT_DOUBLE_EQ(b.preprocess, 0.0);
  // The makespan itself excludes preprocessing in both cases.
  EXPECT_DOUBLE_EQ(a.time, b.time);
}

TEST(Reference, DeterministicAndTimedAtT) {
  auto g = workload::make_mix_guest<1>({8}, 8, 2, 1);
  auto a = sim::reference_run<1>(g);
  auto b = sim::reference_run<1>(g);
  EXPECT_TRUE(sim::same_values<1>(a.final_values, b.final_values));
  EXPECT_DOUBLE_EQ(a.time, 8.0);
  EXPECT_EQ(a.vertices, 64);
}
