// Multiprocessor simulation — Theorem 4 (d=1) and Theorem 1 for d=2
// (the paper defers the d=2 details to its companion report; this
// driver follows the d=1 pattern with the d-dimensional separator).
//
// Structure, mirroring Section 4.2:
//  * one-time memory rearrangement pi2*pi1 (charged to `preprocess`,
//    amortized away by the paper over repeated simulation cycles);
//  * Regime 1: recursive bisection of each machine-wide domain down to
//    macro domains of width p^(1/d) * s, charging the relocation of
//    each child's preboundary/out-set at rearranged distance
//    width/p^(1/d) with p-fold parallelism;
//  * Regime 2: each macro domain is covered by a grid of width-s
//    subtiles (the D(s) diamonds), executed in anti-diagonal wavefronts
//    of up to p mutually independent subtiles — the paper's 2p-1 stages
//    alternating whole and shared ("cooperating mode") diamonds. Each
//    subtile is assigned to the processor owning its home strip;
//    preboundary words resting in that processor's memory are charged
//    at the macro working-set address scale, words crossing a strip
//    boundary are charged as interprocessor communication over one
//    link, and the subtile body runs through the separator executor
//    (recursing to Theorem-3 executable diamonds of width m).
//
// Parallel execution (doc/ENGINE.md "Task layer"): every antichain in
// the hierarchy above can fork into the ambient engine::TaskScheduler —
// machine-tile wavefronts and regime-2 subtile wavefronts when the
// wave has at least MultiprocConfig::wave_grain independent pieces,
// and equal-uppers runs of regime-1 bisection children when the node
// is wider than MultiprocConfig::reloc_grain (the embedded executor
// additionally forks below the subtile per ExecutorConfig::
// parallel_grain). Each fork runs against a private StagingShard and
// records its side effects — relocation charges, subtile charge logs,
// barriers — in a PhaseLog instead of touching the shared ledgers,
// clocks, planner, or op stream. The join replays the logs in
// canonical (fork) order on the calling thread, reproducing the serial
// floating-point charge sequence, clock trajectory, staging trajectory
// and emitted op stream bit for bit at any thread count.
//
// Per-op emission and forking: earlier revisions disabled forking for
// the whole run whenever a ParallelSchedule emitter was attached,
// because subtile op emission ran the planner inside the wave loop
// against shared caches. Emission is now part of canonical-order
// replay — the planner and the emitter only ever run on the joining
// thread, after the forks completed, in exactly the serial order — so
// no phase needs a per-emitter gate anymore: the per-phase grain knobs
// are the only forking gates, and the emitted stream is byte-identical
// whether a phase forked or not.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "core/expect.hpp"
#include "core/logmath.hpp"
#include "engine/arena.hpp"
#include "engine/trace.hpp"
#include "geom/tiling.hpp"
#include "machine/clocks.hpp"
#include "machine/spec.hpp"
#include "sched/parallel.hpp"
#include "sched/planner.hpp"
#include "sep/executor.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/observe.hpp"
#include "sim/result.hpp"

namespace bsmp::sim {

struct MultiprocConfig {
  std::int64_t s = 0;           ///< strip width in nodes; 0: sqrt(n/p)
  std::int64_t leaf_width = 0;  ///< 0: min(m, s)
  double space_const = 6.0;
  bool charge_rearrangement = true;
  /// Region width above which regime-1 bisection forks its equal-uppers
  /// child runs into the ambient scheduler; 0 disables. Execution is
  /// bit-identical either way. Defaults from sep::default_reloc_grain()
  /// (BSMP_RELOC_GRAIN).
  std::int64_t reloc_grain = sep::default_reloc_grain();
  /// Minimum number of independent pieces (subtiles of a regime-2
  /// wavefront, machine tiles of a top-level wavefront) at which a wave
  /// forks; 0 disables, values below 2 behave as 2. Bit-identical
  /// either way. Defaults from sep::default_wave_grain()
  /// (BSMP_WAVE_GRAIN).
  std::int64_t wave_grain = sep::default_wave_grain();
  /// Opt-in hot-path observability (see DcConfig::metrics).
  engine::Metrics* metrics = nullptr;
  std::string hot_label;
};

namespace detail {

/// Construct the simulator's staging store: StagingStore wants the
/// stencil for its dense window geometry; a plain ValueMap does not.
template <class Store, int D>
Store make_staging(const geom::Stencil<D>* st) {
  if constexpr (std::is_constructible_v<Store, const geom::Stencil<D>*>)
    return Store(st);
  else
    return Store{};
}

}  // namespace detail

template <int D, class V = sep::Word, class Store = sep::StagingStore<D, V>>
class MultiprocSimulator {
 public:
  MultiprocSimulator(const sep::BasicGuest<D, V>* guest,
                     const machine::MachineSpec& host, MultiprocConfig cfg)
      : guest_(guest),
        host_(host),
        cfg_(cfg),
        clocks_(host.p),
        staging_(detail::make_staging<Store, D>(&guest->stencil)) {
    guest_->validate();
    host_.validate();
    const geom::Stencil<D>& st = guest_->stencil;
    BSMP_REQUIRE_MSG(host_.d == D, "host dimension mismatch");
    BSMP_REQUIRE_MSG(host_.n == st.num_nodes(),
                     "host volume must equal guest node count");
    BSMP_REQUIRE_MSG(host_.m >= st.m,
                     "the technology density m must cover the guest's "
                     "per-node memory m' (Section 6)");
    proc_side_ = host_.proc_side();
    node_side_ = host_.node_side();
    if (cfg_.s <= 0) {
      cfg_.s = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(std::sqrt(
                 static_cast<double>(host_.n) / static_cast<double>(host_.p))));
    }
    BSMP_REQUIRE_MSG(cfg_.s * proc_side_ <= node_side_ || host_.p == 1,
                     "strip width s too large: s * p^(1/d) must not exceed "
                     "the node side");
    macro_w_ = std::min(node_side_, cfg_.s * proc_side_);
    leaf_w_ = cfg_.leaf_width > 0 ? cfg_.leaf_width
                                  : std::max<std::int64_t>(
                                        1, std::min(st.m, cfg_.s));
    leaf_w_ = std::min(leaf_w_, cfg_.s);

    exec_cfg_.leaf_width = leaf_w_;
    exec_cfg_.f = host_.access_fn();
    exec_cfg_.space_const = cfg_.space_const;
    // Executor forks happen inside a regime-2 subtile body here, so
    // attribute them to that phase in the per-phase task counters.
    exec_cfg_.fork_phase = engine::ForkPhase::kRegime2Subtile;
    exec_.emplace(guest_, exec_cfg_);
    ledgers_.resize(static_cast<std::size_t>(host_.p));

    // Working-set address scale of a subtile's resident data inside its
    // processor's memory after Regime 1 brought the macro domain near;
    // run-wide constants (they depend on macro_w_, not the macro at
    // hand), hoisted so forked subtile bodies share them.
    s_rest_ = cfg_.space_const *
                  static_cast<double>(std::min(st.reach(), macro_w_)) *
                  std::pow(static_cast<double>(cfg_.s), D) +
              8.0;
    f_rest_ = host_.access_fn()(static_cast<std::uint64_t>(s_rest_));
    link_ = host_.link_length();

    sched::PlannerConfig<D> pcfg;
    pcfg.tile_width = node_side_;
    pcfg.leaf_width = leaf_w_;
    pcfg.space_const = cfg_.space_const;
    planner_.emplace(&guest_->stencil, pcfg);
  }

  /// When set, the simulator additionally emits its exact op stream as
  /// a ParallelSchedule (must be constructed with p == host.p); its
  /// makespan_under(host access fn) reproduces run()'s virtual time.
  /// Emission happens on the canonical-order replay path, so it is
  /// byte-identical whether phases fork or run serially (header
  /// comment).
  void set_emit(sched::ParallelSchedule<D>* emit) {
    if (emit != nullptr)
      BSMP_REQUIRE_MSG(emit->num_procs() == host_.p,
                       "schedule must have as many processors as the host");
    emit_ = emit;
  }

  SimResult<D, V> run() {
    const geom::Stencil<D>& st = guest_->stencil;
    SimResult<D, V> res;

    if (cfg_.charge_rearrangement) {
      // n*m words travel an average distance ~node_side/2 with p-fold
      // parallelism (Section 4.2: O(n^2 m / p) for d=1).
      res.preprocess = static_cast<core::Cost>(host_.n) *
                       static_cast<core::Cost>(host_.m) *
                       (static_cast<core::Cost>(node_side_) / 2.0) /
                       static_cast<core::Cost>(host_.p);
      res.ledger.charge(core::CostKind::kRearrange, res.preprocess);
    }

    geom::TileGrid<D> grid(&st, node_side_);
    auto waves = grid.wavefronts();
    std::vector<std::int64_t> suffix_tmin(waves.size() + 1, st.horizon);
    for (std::size_t k = waves.size(); k-- > 0;) {
      std::int64_t mn = suffix_tmin[k + 1];
      for (const auto& tile : waves[k])
        mn = std::min(mn, tile.time_range().first);
      suffix_tmin[k] = mn;
    }

    const double rdist = relocation_distance(node_side_);
    const auto hot_t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < waves.size(); ++k) {
      if (wave_parallel(waves[k].size())) {
        exec_tilewave_forked(waves[k], k, rdist);
      } else {
        PhaseCtx<Store> cx{&staging_, nullptr};
        for (const auto& tile : waves[k]) {
          engine::trace::Span tile_span(engine::trace::Cat::kSim,
                                        "machine-tile", tile.width(),
                                        static_cast<std::int64_t>(k));
          charge_relocation_ctx(
              cx, static_cast<std::size_t>(tile.preboundary_count()), rdist);
          relocate_rec(tile, cx);
        }
      }
      detail::prune_staging<D>(st, staging_, suffix_tmin[k + 1]);
    }
    if (cfg_.metrics != nullptr) {
      engine::HotPathMetric h;
      h.label = cfg_.hot_label.empty() ? "multiproc" : cfg_.hot_label;
      h.vertices = exec_->vertices_executed();
      h.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - hot_t0)
                      .count();
      h.peak_staging_words = exec_->peak_staging();
      h.staging_allocs = sep::store_level_allocs(staging_);
      cfg_.metrics->record_hot(std::move(h));
    }

    for (auto& l : ledgers_) res.ledger += l;
    res.vertices = exec_->vertices_executed();
    res.time = clocks_.makespan();
    res.guest_time = static_cast<core::Cost>(st.horizon);
    res.utilization = clocks_.utilization();
    res.final_values = extract_final<D>(st, staging_);
    return res;
  }

 private:
  using Delta = typename sep::Executor<D, V>::ExecDelta;

  // -------------------------------------------------------------------
  // Phase logs: the recorded side effects of one forked subtree. A
  // fork writes staged values into its private shard and pushes one
  // step per serial side effect; the join replays the steps in
  // canonical order against the shared ledgers / clocks / planner /
  // emitter, reproducing the serial execution exactly.
  // -------------------------------------------------------------------

  /// One charge_relocation() call (regime-1 preboundary/out-set move).
  struct RelocStep {
    std::size_t words = 0;
    double dist = 0.0;
  };

  /// One regime-2 subtile: its identity and home processor, the
  /// preboundary split, the pre/body charge logs and the executor
  /// delta. The body cost is *not* precomputed: the serial path reads
  /// it off the live ledger (total() - before), so the replay must
  /// recompute it against the ledger state at replay time.
  struct SubtileStep {
    std::optional<geom::Region<D>> sub;  // optional: Region has no default ctor
    std::int64_t pr = 0;
    std::size_t resident = 0, cross = 0;
    core::ChargeLog pre, body;
    Delta delta{};

    /// engine::Scratch<T> reset hook: forget the step, keep the charge
    /// logs' buffers for the next checkout.
    void clear() {
      sub.reset();
      pr = 0;
      resident = cross = 0;
      pre.clear();
      body.clear();
      delta = Delta{};
    }
  };

  /// One end-of-wave clock barrier (plus its emitted op).
  struct BarrierStep {};

  using PhaseStep = std::variant<RelocStep, SubtileStep, BarrierStep>;
  using PhaseLog = std::vector<PhaseStep>;

  /// Where a (possibly forked) subtree reads and writes: its staging
  /// view, and — when forked — the log that defers its charges. A null
  /// log means direct mode: charges go straight to the shared ledgers
  /// and clocks, exactly the pre-fork serial path.
  template <class S>
  struct PhaseCtx {
    S* store = nullptr;
    PhaseLog* log = nullptr;
  };

  double relocation_distance(std::int64_t width) const {
    // After the pi2*pi1 rearrangement, transfers for a width-w domain
    // occur at distance w / p^(1/d) (Section 4.2), never below one.
    double d = static_cast<double>(width) /
               static_cast<double>(proc_side_);
    return d < 1.0 ? 1.0 : d;
  }

  void charge_relocation(std::size_t words, double dist) {
    if (words == 0) return;
    core::Cost work = static_cast<core::Cost>(words) * dist;
    core::Cost share = work / static_cast<core::Cost>(host_.p);
    for (std::int64_t pr = 0; pr < host_.p; ++pr) clocks_.advance(pr, share);
    ledgers_[0].charge(core::CostKind::kBlockMove, work, words);
    clocks_.barrier();
    if (emit_ != nullptr) {
      sched::Op<D> op;
      op.kind = sched::OpKind::kRelocate;
      op.words = static_cast<std::int64_t>(words);
      op.distance = dist;
      emit_->push(op);
    }
  }

  template <class S>
  void charge_relocation_ctx(PhaseCtx<S>& cx, std::size_t words,
                             double dist) {
    if (words == 0) return;
    if (cx.log != nullptr) {
      cx.log->push_back(RelocStep{words, dist});
      return;
    }
    charge_relocation(words, dist);
  }

  /// End-of-wave synchronization: all processor clocks meet.
  void wave_barrier() {
    clocks_.barrier();
    if (emit_ != nullptr) {
      sched::Op<D> b;
      b.kind = sched::OpKind::kBarrier;
      emit_->push(b);
    }
  }

  bool sched_parallel() const {
    engine::TaskScheduler* s = engine::TaskScheduler::current();
    return s != nullptr && s->parallel();
  }

  /// Fork a wave (regime-2 subtiles or top-level machine tiles) when
  /// it has enough independent pieces and forks can actually run
  /// concurrently.
  bool wave_parallel(std::size_t units) const {
    if (cfg_.wave_grain <= 0) return false;
    if (static_cast<std::int64_t>(units) <
        std::max<std::int64_t>(2, cfg_.wave_grain))
      return false;
    return sched_parallel();
  }

  /// Fork a regime-1 node's equal-uppers child runs when the node is
  /// above the relocation grain.
  bool reloc_parallel(const geom::Region<D>& r) const {
    return cfg_.reloc_grain > 0 && r.width() > cfg_.reloc_grain &&
           sched_parallel();
  }

  // -------------------------------------------------------------------
  // Replay: apply a fork's recorded steps to the shared state, in
  // canonical order, on the joining thread. `base` is staging_'s size
  // when the forked group's serial-equivalent execution would have
  // started; `cum` accumulates the executor net deltas of the replayed
  // subtiles so absorb() sees the exact serial staging trajectory.
  // -------------------------------------------------------------------

  void merge_subtile_step(SubtileStep& sb, std::size_t base,
                          std::int64_t& cum) {
    core::CostLedger& lg = ledgers_[static_cast<std::size_t>(sb.pr)];
    sb.pre.replay_into(lg);
    // The serial path's exact cost expression, with the executor's
    // contribution recovered through the same total()-before read.
    core::Cost cost = 0;
    cost += 2.0 * f_rest_ * static_cast<core::Cost>(sb.resident);
    if (sb.cross > 0) cost += link_ * static_cast<core::Cost>(sb.cross);
    core::Cost before = lg.total();
    sb.body.replay_into(lg);
    cost += lg.total() - before;
    clocks_.advance(sb.pr, cost);
    exec_->absorb(sb.delta, base + static_cast<std::size_t>(cum));
    cum += sb.delta.net;
    emit_subtile_ops(*sb.sub, sb.pr, sb.resident, sb.cross);
  }

  void replay_phase_log(PhaseLog& log, std::size_t base, std::int64_t& cum) {
    for (PhaseStep& step : log) {
      if (auto* rs = std::get_if<RelocStep>(&step)) {
        charge_relocation(rs->words, rs->dist);
      } else if (auto* sb = std::get_if<SubtileStep>(&step)) {
        merge_subtile_step(*sb, base, cum);
      } else {
        wave_barrier();
      }
    }
  }

  /// Join a group of forked subtrees. Nested in another fork: splice
  /// the logs (the enclosing join replays them) and fold the shards
  /// into the enclosing shard. At the root: replay each log against
  /// the shared state and fold the shards into staging_ — always in
  /// canonical fork order.
  template <class Fork, class S>
  void join_forked_group(std::vector<Fork>& forks, PhaseCtx<S>& cx) {
    engine::trace::Span merge_span(engine::trace::Cat::kTask, "shard-merge",
                                   static_cast<std::int64_t>(forks.size()));
    if (cx.log != nullptr) {
      for (Fork& fk : forks) {
        for (PhaseStep& step : *fk.log)
          cx.log->push_back(std::move(step));
        fk.shard->merge_into(*cx.store);
      }
      return;
    }
    const std::size_t base = staging_.size();
    std::int64_t cum = 0;
    for (Fork& fk : forks) {
      replay_phase_log(*fk.log, base, cum);
      fk.shard->merge_into(staging_);
    }
  }

  // -------------------------------------------------------------------
  // Regime 1
  // -------------------------------------------------------------------

  /// Regime 1: bisect down to macro width, charging relocations.
  template <class S>
  void relocate_rec(const geom::Region<D>& r, PhaseCtx<S>& cx) {
    if (r.width() <= macro_w_) {
      regime2(r, cx);
      return;
    }
    engine::trace::Span span(engine::trace::Cat::kSim, "regime1-relocate",
                             r.width());
    std::vector<geom::Region<D>> children = r.split();
    if (reloc_parallel(r)) {
      relocate_children_forked(r, children, cx);
    } else {
      for (const geom::Region<D>& child : children) relocate_child(child, cx);
    }
  }

  template <class S>
  void relocate_child(const geom::Region<D>& child, PhaseCtx<S>& cx) {
    double dist = relocation_distance(child.width());
    charge_relocation_ctx(
        cx, static_cast<std::size_t>(child.preboundary_count()), dist);
    relocate_rec(child, cx);
    charge_relocation_ctx(cx, static_cast<std::size_t>(child.outset_count()),
                          dist);
  }

  /// Fork runs of consecutive equal-uppers children of one regime-1
  /// node — the same antichain argument as the executor's
  /// exec_children_forked: split() orders children by how many
  /// monotone coordinates take the upper half, and within one such run
  /// no child can feed another. Singleton runs execute in place so
  /// later runs see their out-sets.
  template <class S>
  void relocate_children_forked(const geom::Region<D>& r,
                                const std::vector<geom::Region<D>>& children,
                                PhaseCtx<S>& cx) {
    using Shard = typename sep::ShardOf<D, S>::type;
    struct Fork {
      engine::Scratch<PhaseLog> log;  // pooled on the forking thread
      std::optional<Shard> shard;
    };
    auto uppers = [&r](const geom::Region<D>& child) {
      int u = 0;
      for (int k = 0; k < geom::Region<D>::K; ++k)
        if (child.lo()[k] != r.lo()[k]) ++u;
      return u;
    };
    std::size_t i = 0;
    while (i < children.size()) {
      std::size_t j = i + 1;
      while (j < children.size() && uppers(children[j]) == uppers(children[i]))
        ++j;
      if (j - i == 1) {
        relocate_child(children[i], cx);
      } else {
        std::vector<Fork> forks(j - i);
        for (Fork& fk : forks) fk.shard.emplace(sep::overlay, *cx.store);
        engine::TaskScope scope(engine::ForkPhase::kRegime1Relocate);
        for (std::size_t k = i; k < j; ++k) {
          Fork& fk = forks[k - i];
          const geom::Region<D>& child = children[k];
          scope.fork([this, &fk, &child] {
            PhaseCtx<Shard> sub{&*fk.shard, &*fk.log};
            relocate_child(child, sub);
          });
        }
        scope.join();
        join_forked_group(forks, cx);
      }
      i = j;
    }
  }

  /// Fork one top-level machine-tile wavefront (tiles of one
  /// anti-diagonal are mutually independent); each tile records its
  /// whole regime-1 subtree in a PhaseLog over a private shard.
  template <class TileWave>
  void exec_tilewave_forked(const TileWave& wave, std::size_t k,
                            double rdist) {
    using Shard = typename sep::ShardOf<D, Store>::type;
    struct Fork {
      engine::Scratch<PhaseLog> log;  // pooled on the forking thread
      std::optional<Shard> shard;
    };
    std::vector<Fork> forks(wave.size());
    for (Fork& fk : forks) fk.shard.emplace(sep::overlay, staging_);
    engine::TaskScope scope(engine::ForkPhase::kMachineTile);
    for (std::size_t i = 0; i < wave.size(); ++i) {
      Fork& fk = forks[i];
      const auto& tile = wave[i];
      scope.fork([this, &fk, &tile, k, rdist] {
        engine::trace::Span tile_span(engine::trace::Cat::kSim,
                                      "machine-tile", tile.width(),
                                      static_cast<std::int64_t>(k));
        PhaseCtx<Shard> cx{&*fk.shard, &*fk.log};
        charge_relocation_ctx(
            cx, static_cast<std::size_t>(tile.preboundary_count()), rdist);
        relocate_rec(tile, cx);
      });
    }
    scope.join();
    PhaseCtx<Store> root{&staging_, nullptr};
    join_forked_group(forks, root);
  }

  // -------------------------------------------------------------------
  // Regime 2
  // -------------------------------------------------------------------

  std::int64_t proc_of_strip(const std::array<std::int64_t, D>& strip) const {
    std::int64_t pr = 0;
    for (int i = 0; i < D; ++i)
      pr = pr * proc_side_ + core::mod_floor(strip[i], proc_side_);
    return pr;
  }

  std::array<std::int64_t, D> strip_of(const std::array<int64_t, D>& x) const {
    std::array<std::int64_t, D> s;
    for (int i = 0; i < D; ++i) s[i] = x[i] / cfg_.s;
    return s;
  }

  /// Regime 2: execute a macro domain via width-s subtile wavefronts.
  template <class S>
  void regime2(const geom::Region<D>& macro, PhaseCtx<S>& cx) {
    engine::trace::Span macro_span(engine::trace::Cat::kSim, "regime2-macro",
                                   macro.width());
    constexpr int K = geom::kMono<D>;
    const geom::Stencil<D>& st = guest_->stencil;

    std::array<std::int64_t, K> cells;
    for (int k = 0; k < K; ++k)
      cells[k] = core::div_ceil(macro.hi()[k] - macro.lo()[k], cfg_.s);

    // Group subtiles by wavefront (sum of grid indices).
    std::int64_t max_sum = 0;
    for (int k = 0; k < K; ++k) max_sum += cells[k] - 1;
    std::vector<std::vector<geom::Region<D>>> waves(
        static_cast<std::size_t>(max_sum + 1));
    std::array<std::int64_t, K> g{};
    for (;;) {
      std::array<std::int64_t, K> lo, hi;
      std::int64_t sum = 0;
      for (int k = 0; k < K; ++k) {
        lo[k] = macro.lo()[k] + g[k] * cfg_.s;
        hi[k] = std::min(macro.hi()[k], lo[k] + cfg_.s);
        sum += g[k];
      }
      geom::Region<D> sub(&st, lo, hi);
      if (!sub.empty())
        waves[static_cast<std::size_t>(sum)].push_back(std::move(sub));
      int k = 0;
      while (k < K) {
        if (++g[k] < cells[k]) break;
        g[k] = 0;
        ++k;
      }
      if (k == K) break;
    }

    for (std::size_t wi = 0; wi < waves.size(); ++wi) {
      const auto& wave = waves[wi];
      engine::trace::Span wave_span(engine::trace::Cat::kSim, "regime2-wave",
                                    static_cast<std::int64_t>(wave.size()),
                                    static_cast<std::int64_t>(wi));
      if (wave_parallel(wave.size())) {
        exec_wave_forked(wave, cx);
      } else if (cx.log != nullptr) {
        // Serial within an enclosing fork: execute against the fork's
        // shard, recording each subtile as a step for the join replay.
        for (const geom::Region<D>& sub : wave) {
          cx.log->push_back(SubtileStep{});
          make_subtile_step(sub, *cx.store,
                            std::get<SubtileStep>(cx.log->back()));
        }
      } else {
        for (const geom::Region<D>& sub : wave) exec_subtile(sub);
      }
      if (cx.log != nullptr)
        cx.log->push_back(BarrierStep{});
      else
        wave_barrier();
    }
  }

  /// The forked/logged subtile body: identify the home processor,
  /// split the preboundary, record the pre charges and run the body
  /// through the executor against `store` — no shared state touched.
  template <class S>
  void make_subtile_step(const geom::Region<D>& sub, S& store,
                         SubtileStep& sb) {
    sb.sub = sub;
    auto fp = sub.first_point();
    BSMP_ASSERT(fp.has_value());
    auto home = strip_of(fp->x);
    sb.pr = proc_of_strip(home);
    // Span args match exec_subtile's so the deterministic span set is
    // the same whether the wave forked or ran serially.
    engine::trace::Span sub_span(engine::trace::Cat::kSim, "regime2-subtile",
                                 sub.width(), sb.pr);
    sub.preboundary_visit([&](const geom::Point<D>& q) {
      if (strip_of(q.x) != home)
        ++sb.cross;
      else
        ++sb.resident;
    });
    sb.pre.charge(core::CostKind::kBlockMove,
                  2.0 * f_rest_ * static_cast<core::Cost>(sb.resident),
                  sb.resident);
    if (sb.cross > 0)
      sb.pre.charge(core::CostKind::kComm,
                    link_ * static_cast<core::Cost>(sb.cross), sb.cross);
    sb.delta = exec_->execute_delta(sub, store, sb.body);
  }

  /// One subtile of a Regime-2 wave, serially at the root (the
  /// reference path: charges hit the shared ledgers directly).
  void exec_subtile(const geom::Region<D>& sub) {
    auto fp = sub.first_point();
    BSMP_ASSERT(fp.has_value());
    auto home = strip_of(fp->x);
    std::int64_t pr = proc_of_strip(home);
    engine::trace::Span sub_span(engine::trace::Cat::kSim, "regime2-subtile",
                                 sub.width(), pr);

    // Root preboundary: resident words vs strip-crossing words
    // (counting visitor — no materialized vector).
    std::size_t cross = 0, resident = 0;
    sub.preboundary_visit([&](const geom::Point<D>& q) {
      if (strip_of(q.x) != home)
        ++cross;
      else
        ++resident;
    });

    core::Cost cost = 0;
    cost += 2.0 * f_rest_ * static_cast<core::Cost>(resident);
    ledgers_[static_cast<std::size_t>(pr)].charge(
        core::CostKind::kBlockMove,
        2.0 * f_rest_ * static_cast<core::Cost>(resident), resident);
    if (cross > 0) {
      core::Cost c = link_ * static_cast<core::Cost>(cross);
      cost += c;
      ledgers_[static_cast<std::size_t>(pr)].charge(core::CostKind::kComm,
                                                    c, cross);
    }

    // Subtile body via the separator executor, charged to pr.
    exec_->set_ledger(&ledgers_[static_cast<std::size_t>(pr)]);
    core::Cost before = ledgers_[static_cast<std::size_t>(pr)].total();
    exec_->execute(sub, staging_);
    cost += ledgers_[static_cast<std::size_t>(pr)].total() - before;

    clocks_.advance(pr, cost);
    emit_subtile_ops(sub, pr, resident, cross);
  }

  /// Emit one subtile's ops. Only ever called on the root thread — by
  /// the serial path in wave order, or by the join replay in canonical
  /// order — so the planner's shared caches see no concurrency and the
  /// stream is byte-identical either way.
  void emit_subtile_ops(const geom::Region<D>& sub, std::int64_t pr,
                        std::size_t resident, std::size_t cross) {
    if (emit_ == nullptr) return;
    if (resident > 0) {
      sched::Op<D> in;
      in.kind = sched::OpKind::kCopyIn;
      in.proc = pr;
      in.words = static_cast<std::int64_t>(resident);
      in.addr_scale = s_rest_;
      emit_->push(in);
    }
    if (cross > 0) {
      sched::Op<D> cm;
      cm.kind = sched::OpKind::kComm;
      cm.proc = pr;
      cm.words = static_cast<std::int64_t>(cross);
      cm.distance = link_;
      emit_->push(cm);
    }
    // The subtile body: the serial planner emits exactly the op
    // stream the executor charges; annotate it with pr.
    sched::Schedule<D> body;
    planner_->plan_region(body, sub);
    for (sched::Op<D> op : body.ops()) {
      op.proc = pr;
      emit_->push(op);
    }
  }

  /// One wave with its independent subtiles forked. Each runs against
  /// a private StagingShard over cx's store with private ChargeLogs;
  /// the join merges in canonical subtile order (directly at the root,
  /// or by splicing into the enclosing fork's log).
  template <class S>
  void exec_wave_forked(const std::vector<geom::Region<D>>& wave,
                        PhaseCtx<S>& cx) {
    using Shard = typename sep::ShardOf<D, S>::type;
    struct Fork {
      engine::Scratch<SubtileStep> step;  // pooled on the forking thread
      std::optional<Shard> shard;
    };
    std::vector<Fork> forks(wave.size());
    for (Fork& fk : forks) fk.shard.emplace(sep::overlay, *cx.store);
    engine::TaskScope scope(engine::ForkPhase::kRegime2Wave);
    for (std::size_t i = 0; i < wave.size(); ++i) {
      Fork& fk = forks[i];
      const geom::Region<D>& sub = wave[i];
      scope.fork(
          [this, &fk, &sub] { make_subtile_step(sub, *fk.shard, *fk.step); });
    }
    scope.join();
    engine::trace::Span merge_span(engine::trace::Cat::kTask, "shard-merge",
                                   static_cast<std::int64_t>(wave.size()));
    if (cx.log != nullptr) {
      for (Fork& fk : forks) {
        cx.log->push_back(std::move(*fk.step));
        fk.shard->merge_into(*cx.store);
      }
      return;
    }
    const std::size_t base = staging_.size();
    std::int64_t cum = 0;
    for (Fork& fk : forks) {
      merge_subtile_step(*fk.step, base, cum);
      fk.shard->merge_into(staging_);
    }
  }

  const sep::BasicGuest<D, V>* guest_;
  machine::MachineSpec host_;
  MultiprocConfig cfg_;
  sep::ExecutorConfig exec_cfg_;
  machine::ProcClocks clocks_;
  std::vector<core::CostLedger> ledgers_;
  std::optional<sep::Executor<D, V>> exec_;
  std::optional<sched::Planner<D>> planner_;
  sched::ParallelSchedule<D>* emit_ = nullptr;
  Store staging_;
  std::int64_t proc_side_ = 1;
  std::int64_t node_side_ = 1;
  std::int64_t macro_w_ = 1;
  std::int64_t leaf_w_ = 1;
  double s_rest_ = 0.0;
  core::Cost f_rest_ = 0;
  core::Cost link_ = 0;
};

template <int D, class V, class Store = sep::StagingStore<D, V>>
SimResult<D, V> simulate_multiproc(const sep::BasicGuest<D, V>& guest,
                                   const machine::MachineSpec& host,
                                   MultiprocConfig cfg = {}) {
  MultiprocSimulator<D, V, Store> sim(&guest, host, cfg);
  return sim.run();
}

}  // namespace bsmp::sim
