// ASCII rendering of d=1 space-time domains: x across, t upward — the
// same orientation as the paper's Figures 1 and 2. Each partition
// piece gets a distinct glyph; points outside every piece show as '.'.
// Used by the figures-gallery example and handy when debugging
// decompositions.
#pragma once

#include <string>
#include <vector>

#include "geom/region.hpp"

namespace bsmp::geom {

/// Render the pieces over the full vertex set of their (common)
/// stencil. Pieces are drawn with glyphs '1'..'9', 'a'..'z' in order;
/// overlapping pieces (a bug) show as '#'.
std::string render_partition_1d(const Stencil<1>& st,
                                const std::vector<Region<1>>& pieces);

/// Render a single domain ('*') inside its stencil box.
std::string render_region_1d(const Region<1>& region);

/// Render one time-slice (fixed t) of a d=2 partition: x across, y up.
std::string render_partition_2d_slice(const Stencil<2>& st,
                                      const std::vector<Region<2>>& pieces,
                                      int64_t t);

}  // namespace bsmp::geom
