file(REMOVE_RECURSE
  "CMakeFiles/figures_gallery.dir/figures_gallery.cpp.o"
  "CMakeFiles/figures_gallery.dir/figures_gallery.cpp.o.d"
  "figures_gallery"
  "figures_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
