// Cross-cutting invariants at sizes beyond the brute-force tests:
// space bounds in d=2, Definition-4 containment checked geometrically,
// wavefront dependency safety for d=2/3 grids, and assorted edge cases.
#include <gtest/gtest.h>

#include <unordered_set>

#include "dag/explicit_dag.hpp"
#include "geom/figures.hpp"
#include "geom/tiling.hpp"
#include "sep/executor.hpp"
#include "sim/dc_uniproc.hpp"
#include "sim/reference.hpp"
#include "workload/rules.hpp"

using namespace bsmp;
using geom::Point;
using geom::PointHash;
using geom::Region;
using geom::Stencil;

TEST(Invariants, PeakStagingWithinSpaceBound2D) {
  // The d=2 analogue of the d=1 space test: σ(|P|) = O(|P|^(2/3)).
  for (int64_t r : {8, 16, 24}) {
    auto g = workload::make_mix_guest<2>({64, 64}, 64, 1, 5);
    sep::ExecutorConfig cfg;
    cfg.leaf_width = 1;
    cfg.f = hram::AccessFn::hierarchical(2, 1.0);
    sep::Executor<2> exec(&g, cfg);
    core::CostLedger ledger;
    exec.set_ledger(&ledger);
    auto p = geom::make_octahedron(&g.stencil, 16, -16, 16, -16, r);
    ASSERT_FALSE(p.empty());
    sep::ValueMap<2> staging;
    for (const auto& q : p.preboundary()) staging.emplace(q, 1);
    exec.execute(p, staging);
    EXPECT_LE(static_cast<double>(exec.peak_staging()),
              exec.space_bound(r))
        << "r=" << r;
  }
}

TEST(Invariants, Definition4ContainmentGeometric) {
  // Γin(child_i) ⊆ Γin(U) ∪ (earlier children), checked with point
  // sets from the geometry alone — larger than the dag brute force
  // can afford.
  for (int64_t m : {1, 3}) {
    Stencil<1> st{{128}, 128, m};
    Region<1> d = geom::make_diamond(&st, 32, -32, 64);
    ASSERT_FALSE(d.empty());
    std::unordered_set<Point<1>, PointHash<1>> available;
    for (const auto& q : d.preboundary()) available.insert(q);
    for (const auto& child : d.split()) {
      for (const auto& q : child.preboundary())
        EXPECT_TRUE(available.contains(q)) << "m=" << m;
      child.for_each([&](const Point<1>& p) { available.insert(p); });
    }
  }
}

TEST(Invariants, Definition4ContainmentGeometric2D) {
  Stencil<2> st{{64, 64}, 64, 1};
  Region<2> p = geom::make_octahedron(&st, 16, -16, 16, -16, 24);
  ASSERT_FALSE(p.empty());
  std::unordered_set<Point<2>, PointHash<2>> available;
  for (const auto& q : p.preboundary()) available.insert(q);
  for (const auto& child : p.split()) {
    for (const auto& q : child.preboundary())
      EXPECT_TRUE(available.contains(q));
    child.for_each([&](const Point<2>& q) { available.insert(q); });
  }
}

template <int D>
void check_wavefront_safety(const Stencil<D>& st, int64_t width) {
  geom::TileGrid<D> grid(&st, width);
  auto waves = grid.wavefronts();
  std::unordered_map<Point<D>, int, PointHash<D>> wave_of;
  std::unordered_map<Point<D>, int, PointHash<D>> tile_of;
  int tid = 0;
  for (std::size_t k = 0; k < waves.size(); ++k)
    for (const auto& tile : waves[k]) {
      tile.for_each([&](const Point<D>& p) {
        wave_of[p] = static_cast<int>(k);
        tile_of[p] = tid;
      });
      ++tid;
    }
  dag::ExplicitDag<D> g(st);
  g.for_each_vertex([&](const Point<D>& p) {
    std::array<Point<D>, geom::kMono<D> + 1> buf;
    int np = st.preds(p, buf);
    for (int i = 0; i < np; ++i) {
      if (tile_of.at(buf[i]) == tile_of.at(p)) continue;
      EXPECT_LT(wave_of.at(buf[i]), wave_of.at(p));
    }
  });
}

TEST(Invariants, WavefrontDependencySafety2D) {
  Stencil<2> st{{5, 5}, 6, 1};
  check_wavefront_safety<2>(st, 3);
  Stencil<2> st2{{4, 4}, 8, 2};
  check_wavefront_safety<2>(st2, 4);
}

TEST(Invariants, WavefrontDependencySafety3D) {
  Stencil<3> st{{3, 3, 3}, 4, 1};
  check_wavefront_safety<3>(st, 2);
}

TEST(Invariants, ShellPartitionPieceCountsAcrossD) {
  // 2K+1 pieces when the center is interior: 5 (d=1), 9 (d=2), 13 (d=3).
  Stencil<1> s1{{16}, 16, 1};
  EXPECT_EQ(geom::shell_partition<1>(
                &s1, Region<1>(&s1, {8, -8}, {24, 8}))
                .size(),
            5u);
  Stencil<2> s2{{8, 8}, 8, 1};
  EXPECT_EQ(geom::shell_partition<2>(
                &s2, geom::make_octahedron(&s2, 4, -4, 4, -4, 6))
                .size(),
            9u);
  Stencil<3> s3{{4, 4, 4}, 4, 1};
  EXPECT_EQ(geom::shell_partition<3>(
                &s3, Region<3>(&s3, {2, -2, 2, -2, 2, -2},
                               {5, 1, 5, 1, 5, 1}))
                .size(),
            13u);
}

TEST(Invariants, ExecutorChargesScaleWithAccessFn) {
  // Doubling every access cost doubles the charged time (the engine is
  // linear in f) — a sanity anchor for the cost model.
  auto g = workload::make_mix_guest<1>({16}, 16, 1, 6);
  auto run_with = [&](hram::AccessFn f) {
    sep::ExecutorConfig cfg;
    cfg.leaf_width = 1;
    cfg.f = f;
    sep::Executor<1> exec(&g, cfg);
    core::CostLedger ledger;
    exec.set_ledger(&ledger);
    geom::TileGrid<1> grid(&g.stencil, 16);
    sep::ValueMap<1> staging;
    for (const auto& wave : grid.wavefronts())
      for (const auto& t : wave) exec.execute(t, staging);
    return ledger.total() -
           ledger.cost(core::CostKind::kCompute);  // f-dependent part
  };
  double t1 = run_with(hram::AccessFn::power(1.0, 1.0));
  double t2 = run_with(hram::AccessFn::power(2.0, 1.0));
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(Invariants, TileGridDegenerateShapes) {
  // Extremes: width 1 tiles; a single tile covering everything; a
  // 1-node mesh; a 1-step horizon.
  Stencil<1> st{{4}, 4, 1};
  geom::TileGrid<1> fine(&st, 1);
  std::int64_t pts = 0;
  for (const auto& w : fine.wavefronts())
    for (const auto& t : w) pts += t.count();
  EXPECT_EQ(pts, 16);

  geom::TileGrid<1> coarse(&st, 100);
  EXPECT_EQ(coarse.num_tiles(), 1);

  Stencil<1> tiny{{1}, 1, 1};
  geom::TileGrid<1> one(&tiny, 2);
  EXPECT_EQ(one.num_tiles(), 1);
  auto g = workload::make_mix_guest<1>({1}, 1, 1, 1);
  auto ref = sim::reference_run<1>(g);
  EXPECT_EQ(ref.final_values.size(), 1u);
}

TEST(Invariants, SingleNodeGuestThroughSimulators) {
  auto g = workload::make_mix_guest<1>({1}, 7, 3, 9);
  auto ref = sim::reference_run<1>(g);
  machine::MachineSpec host{1, 1, 1, 3};
  auto dc = sim::simulate_dc_uniproc<1>(g, host);
  EXPECT_TRUE(sim::same_values<1>(dc.final_values, ref.final_values));
}
