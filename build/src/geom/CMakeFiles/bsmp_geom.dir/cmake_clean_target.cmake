file(REMOVE_RECURSE
  "libbsmp_geom.a"
)
